#include "store/snapshot.hpp"

#include <algorithm>
#include <filesystem>

namespace p4s::store {

namespace detail {

bool ReadContext::is_columnar(const std::string& field) const {
  if (field == time_field) return true;
  return std::find(hot_fields.begin(), hot_fields.end(), field) !=
         hot_fields.end();
}

SegmentHandle::~SegmentHandle() {
  if (!retired.load(std::memory_order_acquire)) return;
  // Last reference died after compaction replaced this segment: unlink
  // the file. This may run on a reader thread (the snapshot that kept
  // the segment alive), which is why everything needed lives in ctx.
  std::error_code ec;
  std::filesystem::remove(ctx->dir + "/" + file, ec);
  ctx->cache->erase(file);
  ctx->counters.segments_gc_deleted.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const Segment> SegmentHandle::load() const {
  return ctx->cache->get_or_load(file, [this] {
    auto seg = std::make_shared<Segment>(Segment::load(ctx->dir + "/" + file));
    if (seg->info().docs != info.docs ||
        seg->info().base_seq != info.base_seq) {
      throw StoreError("store: segment " + file +
                       " disagrees with the manifest");
    }
    return seg;
  });
}

}  // namespace detail

namespace {

/// nullopt would mean "cannot decide"; pruning only needs true = the
/// segment cannot contain a match.
bool prune_by_range(const detail::SegmentHandle& handle,
                    const ScanOptions& options) {
  if (options.range_field.empty()) return false;
  const auto it = handle.summaries.find(options.range_field);
  if (it == handle.summaries.end()) return false;  // not columnar: scan
  const ColumnSummary& s = it->second;
  // No document in the segment carries the field numerically -> no
  // document can match a range filter on it.
  if (s.count == 0) return true;
  if (options.range_min.has_value() && s.max < *options.range_min) {
    return true;
  }
  if (options.range_max.has_value() && s.min > *options.range_max) {
    return true;
  }
  return false;
}

std::vector<std::uint32_t> intersect_sorted(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

const detail::IndexView* Snapshot::find_index(const std::string& index) const {
  const auto it = view_->indices.find(index);
  return it == view_->indices.end() ? nullptr : it->second.get();
}

std::uint64_t Snapshot::doc_count(const std::string& index) const {
  const auto* state = find_index(index);
  return state == nullptr ? 0 : state->sealed_docs + state->memtable_count;
}

std::uint64_t Snapshot::total_docs() const {
  std::uint64_t total = 0;
  for (const auto& [name, state] : view_->indices) {
    (void)name;
    total += state->sealed_docs + state->memtable_count;
  }
  return total;
}

std::vector<std::string> Snapshot::indices() const {
  std::vector<std::string> names;
  names.reserve(view_->indices.size());
  for (const auto& [name, state] : view_->indices) {
    (void)state;
    names.push_back(name);
  }
  return names;
}

std::uint64_t Snapshot::segment_count(const std::string& index) const {
  const auto* state = find_index(index);
  return state == nullptr ? 0 : state->segments.size();
}

std::uint64_t Snapshot::memtable_docs(const std::string& index) const {
  const auto* state = find_index(index);
  return state == nullptr ? 0 : state->memtable_count;
}

void Snapshot::scan(const std::string& index, const ScanOptions& options,
                    const std::function<bool(const util::Json&)>& visit) const {
  const auto* state = find_index(index);
  if (state == nullptr) return;
  auto& counters = ctx_->counters;
  counters.scans.fetch_add(1, std::memory_order_relaxed);

  bool stopped = false;
  const auto scan_segment = [&](const detail::SegmentHandle& handle) {
    counters.segments_considered.fetch_add(1, std::memory_order_relaxed);
    if (prune_by_range(handle, options)) {
      counters.segments_pruned_range.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Term filtering needs the segment's index blocks. Posting-covered
    // keys resolve to exact row lists (intersected across keys); keys on
    // uncovered fields fall back to the bloom filter, which can still
    // prune the whole segment.
    std::shared_ptr<const Segment> seg;
    std::optional<std::vector<std::uint32_t>> rows;
    for (const auto& key : options.term_keys) {
      if (!seg) seg = handle.load();
      auto posted = seg->postings(key);
      if (posted.has_value()) {
        rows = rows.has_value() ? intersect_sorted(*rows, *posted)
                                : std::move(*posted);
        if (rows->empty()) {
          counters.segments_pruned_postings.fetch_add(
              1, std::memory_order_relaxed);
          return;
        }
      } else if (!seg->maybe_contains_term(key)) {
        counters.segments_pruned_terms.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    if (!seg) seg = handle.load();
    counters.segments_scanned.fetch_add(1, std::memory_order_relaxed);
    const auto visit_text = [&](std::string_view text) {
      const util::Json doc = util::Json::parse(text);
      if (!visit(doc)) {
        stopped = true;
        return false;
      }
      return true;
    };
    if (rows.has_value()) {
      // Seek straight to the candidate rows instead of parsing every
      // document in the segment.
      counters.postings_rows_seeked.fetch_add(rows->size(),
                                              std::memory_order_relaxed);
      if (options.newest_first) {
        for (auto r = rows->rbegin(); r != rows->rend(); ++r) {
          if (!visit_text(seg->doc_text(*r))) break;
        }
      } else {
        for (const std::uint32_t r : *rows) {
          if (!visit_text(seg->doc_text(r))) break;
        }
      }
      return;
    }
    seg->for_each_doc(options.newest_first,
                      [&](std::uint64_t, std::string_view text) {
                        return visit_text(text);
                      });
  };
  const auto scan_memtable = [&] {
    if (options.newest_first) {
      for (auto c = state->chunks.rbegin();
           !stopped && c != state->chunks.rend(); ++c) {
        for (auto d = (*c)->docs.rbegin();
             !stopped && d != (*c)->docs.rend(); ++d) {
          if (!visit(**d)) stopped = true;
        }
      }
    } else {
      for (const auto& chunk : state->chunks) {
        if (stopped) break;
        for (const auto& doc : chunk->docs) {
          if (stopped) break;
          if (!visit(*doc)) stopped = true;
        }
      }
    }
  };

  if (options.newest_first) {
    scan_memtable();
    for (auto s = state->segments.rbegin();
         !stopped && s != state->segments.rend(); ++s) {
      scan_segment(**s);
    }
  } else {
    for (const auto& handle : state->segments) {
      if (stopped) break;
      scan_segment(*handle);
    }
    if (!stopped) scan_memtable();
  }
}

std::optional<ColumnAggregate> Snapshot::aggregate_column(
    const std::string& index, const std::string& field,
    const std::string& range_field, std::optional<double> range_min,
    std::optional<double> range_max) const {
  if (!ctx_->is_columnar(field)) return std::nullopt;
  const bool ranged = !range_field.empty();
  if (ranged && !ctx_->is_columnar(range_field)) return std::nullopt;

  const auto in_range = [&](double v) {
    if (range_min.has_value() && v < *range_min) return false;
    if (range_max.has_value() && v > *range_max) return false;
    return true;
  };
  ColumnAggregate agg;
  const auto fold = [&](double v) {
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    agg.sum += v;
    ++agg.count;
  };
  const auto fold_summary = [&](const ColumnSummary& s) {
    if (s.count == 0) return;
    if (agg.count == 0) {
      agg.min = s.min;
      agg.max = s.max;
    } else {
      agg.min = std::min(agg.min, s.min);
      agg.max = std::max(agg.max, s.max);
    }
    agg.sum += s.sum;
    agg.count += s.count;
  };

  const auto* state = find_index(index);
  if (state == nullptr) return agg;
  for (const auto& handle : state->segments) {
    const auto fit = handle->summaries.find(field);
    const ColumnSummary& fs =
        fit == handle->summaries.end() ? ColumnSummary{} : fit->second;
    if (!ranged) {
      fold_summary(fs);
      continue;
    }
    const auto rit = handle->summaries.find(range_field);
    const ColumnSummary& rs =
        rit == handle->summaries.end() ? ColumnSummary{} : rit->second;
    if (rs.count == 0) continue;  // no document can pass the range filter
    const bool fully_inside =
        (!range_min.has_value() || rs.min >= *range_min) &&
        (!range_max.has_value() || rs.max <= *range_max);
    if (fully_inside && range_field == field) {
      // Every document carrying the field passes the filter on it.
      fold_summary(fs);
      continue;
    }
    if (rs.max < range_min.value_or(rs.max) ||
        rs.min > range_max.value_or(rs.min)) {
      continue;  // disjoint: prune
    }
    // Partial overlap (or the filter is on another column): decode the
    // columns and fold row by row — still no document JSON parsing.
    const auto seg = handle->load();
    const auto range_vals = seg->decode_column(range_field);
    const auto field_vals =
        field == range_field ? range_vals : seg->decode_column(field);
    for (std::size_t i = 0; i < field_vals.size(); ++i) {
      if (!range_vals[i].has_value() || !in_range(*range_vals[i])) continue;
      if (!field_vals[i].has_value()) continue;
      fold(*field_vals[i]);
    }
  }
  // Memtable rows are walked directly (they are already parsed JSON).
  for (const auto& chunk : state->chunks) {
    for (const auto& doc : chunk->docs) {
      if (ranged) {
        const auto rv = json_field_at(*doc, range_field);
        if (!rv.has_value() || !rv->is_number() ||
            !in_range(rv->as_double())) {
          continue;
        }
      }
      const auto fv = json_field_at(*doc, field);
      if (!fv.has_value() || !fv->is_number()) continue;
      fold(fv->as_double());
    }
  }
  return agg;
}

}  // namespace p4s::store
