#include "store/block_cache.hpp"

#include <algorithm>

#include "store/segment.hpp"

namespace p4s::store {

BlockCache::BlockCache(std::size_t capacity_bytes, std::size_t shards)
    : capacity_bytes_(capacity_bytes) {
  const std::size_t n = std::max<std::size_t>(1, shards);
  shard_capacity_ = capacity_bytes_ == 0 ? 0 : std::max<std::size_t>(
                                                   1, capacity_bytes_ / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BlockCache::Shard& BlockCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const Segment> BlockCache::get_or_load(
    const std::string& key,
    const std::function<std::shared_ptr<const Segment>()>& load) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->segment;
  }
  ++shard.misses;
  // The load runs under the shard lock: concurrent misses on one key
  // decode the file once, at the price of serializing same-shard misses
  // (sharding keeps that window narrow).
  std::shared_ptr<const Segment> segment = load();
  Entry entry{key, segment, segment->approx_bytes()};
  shard.bytes += entry.charge;
  shard.lru.push_front(std::move(entry));
  shard.map[key] = shard.lru.begin();
  while (shard_capacity_ != 0 && shard.bytes > shard_capacity_ &&
         shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return segment;
}

void BlockCache::erase(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return;
  shard.bytes -= it->second->charge;
  shard.lru.erase(it->second);
  shard.map.erase(it);
}

BlockCache::Stats BlockCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  return out;
}

}  // namespace p4s::store
