// Write-ahead log: the durability floor of the store.
//
// Appends are buffered into a batch; commit() frames the batch as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// and appends it to the log in one write. The payload is
//
//   varint doc_count, then per doc:
//     blob index_name, varint seq, blob doc_json
//
// Recovery invariant (the property the crash-recovery matrix pins):
// replay_wal() returns exactly the documents of the longest prefix of
// *fully committed* batches. A tail cut at any byte — mid-header,
// mid-payload, or between batches — is silently dropped (reported in
// `tail_bytes_dropped`), never a partial document and never an exception.
// Anything before the damaged tail is replayed deterministically; no
// fsync is needed for that determinism, only for power-loss windows we
// don't model.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "store/codec.hpp"

namespace p4s::store {

/// One logical append: a JSON document bound for `index`, at the
/// index-local sequence number `seq` (assigned by the Store).
struct WalRecord {
  std::string index;
  std::uint64_t seq = 0;
  std::string doc;  // serialized JSON
};

/// Batches must stay well under this; a length field beyond it marks a
/// corrupt (not merely truncated) tail and also stops replay.
inline constexpr std::uint32_t kWalMaxBatchBytes = 64u << 20;

class WalWriter {
 public:
  /// Opens `path` for appending (creates it if missing).
  explicit WalWriter(const std::string& path);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffer one record into the pending batch (not yet durable).
  void append(const WalRecord& record);

  std::size_t pending_docs() const { return pending_docs_; }

  /// Frame and write the pending batch; a no-op when nothing is pending.
  /// Throws StoreError if the stream went bad.
  void commit();

  std::uint64_t batches_committed() const { return batches_; }

 private:
  std::ofstream out_;
  std::string path_;
  std::string payload_;
  std::size_t pending_docs_ = 0;
  std::uint64_t batches_ = 0;
};

struct WalReplay {
  std::vector<WalRecord> records;  // longest committed-batch prefix
  std::uint64_t batches = 0;
  /// Bytes of truncated or corrupt tail that were ignored (0 on a clean
  /// log). Non-zero is expected after a crash, not an error.
  std::uint64_t tail_bytes_dropped = 0;
};

/// Replay a log file. A missing file replays as empty (a store that never
/// appended). Never throws on truncation/corruption — see the recovery
/// invariant above.
WalReplay replay_wal(const std::string& path);

/// Replay from in-memory bytes (the truncation test matrix drives this).
WalReplay replay_wal_bytes(std::string_view data);

}  // namespace p4s::store
