#include "store/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace p4s::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFile = "MANIFEST.json";
constexpr const char* kWalFile = "wal.log";
constexpr const char* kSegmentDir = "seg";

/// Memtable chunk capacity. Appends republish only the last chunk (a
/// vector of shared_ptrs this long), so the per-append copy cost is
/// bounded regardless of memtable size.
constexpr std::size_t kMemChunkDocs = 64;

std::function<void(std::string_view)> g_failpoint_hook;

void failpoint(std::string_view name) {
  if (g_failpoint_hook) g_failpoint_hook(name);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Index names appear in segment file names; keep them filesystem-safe.
/// Uniqueness comes from the numeric segment id, not the sanitized name.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

std::int64_t bucket_start(std::int64_t t, std::int64_t bucket) {
  std::int64_t q = t / bucket;
  if (t % bucket != 0 && t < 0) --q;
  return q * bucket;
}

util::Json summary_to_json(const ColumnSummary& s) {
  util::Json j = util::Json::object();
  j["count"] = s.count;
  j["min"] = s.min;
  j["max"] = s.max;
  j["sum"] = s.sum;
  return j;
}

ColumnSummary summary_from_json(const util::Json& j) {
  ColumnSummary s;
  s.count = static_cast<std::uint64_t>(j.at("count").as_int());
  s.min = j.at("min").as_double();
  s.max = j.at("max").as_double();
  s.sum = j.at("sum").as_double();
  return s;
}

}  // namespace

void set_store_failpoint_hook(std::function<void(std::string_view)> hook) {
  g_failpoint_hook = std::move(hook);
}

Store::Store(std::string dir, StoreConfig config, OpenMode mode)
    : dir_(std::move(dir)),
      config_(std::move(config)),
      read_only_(mode == OpenMode::read_only) {
  ctx_ = std::make_shared<detail::ReadContext>();
  ctx_->dir = dir_;
  ctx_->time_field = config_.time_field;
  ctx_->hot_fields = config_.hot_fields;
  ctx_->cache = std::make_unique<BlockCache>(config_.cache_bytes,
                                             config_.cache_shards);
  if (!read_only_) {
    fs::create_directories(dir_ + "/" + kSegmentDir);
  }

  BuildMap build;
  load_manifest(build);

  // Replay the WAL tail: everything not yet counted as sealed goes back
  // into the memtables, in append order.
  WalReplay replay = replay_wal(dir_ + "/" + kWalFile);
  wal_batches_replayed_ = replay.batches;
  wal_tail_bytes_dropped_ = replay.tail_bytes_dropped;
  std::map<std::string, std::vector<std::shared_ptr<const util::Json>>>
      replayed;
  for (auto& record : replay.records) {
    auto& state = build[record.index];
    if (!state) state = std::make_shared<detail::IndexView>();
    if (record.seq < state->sealed_docs + replayed[record.index].size()) {
      ++wal_records_skipped_sealed_;
      continue;
    }
    try {
      replayed[record.index].push_back(
          std::make_shared<const util::Json>(util::Json::parse(record.doc)));
    } catch (const util::JsonError& e) {
      throw StoreError("store: WAL document failed to parse: " +
                       std::string(e.what()));
    }
  }
  for (auto& [name, docs] : replayed) {
    auto& state = build[name];
    for (std::size_t i = 0; i < docs.size(); i += kMemChunkDocs) {
      const std::size_t end = std::min(i + kMemChunkDocs, docs.size());
      auto chunk = std::make_shared<detail::MemChunk>();
      chunk->docs.assign(docs.begin() + static_cast<std::ptrdiff_t>(i),
                         docs.begin() + static_cast<std::ptrdiff_t>(end));
      state->chunks.push_back(std::move(chunk));
    }
    state->memtable_count += docs.size();
  }

  auto view = std::make_shared<detail::StoreView>();
  for (auto& [name, state] : build) {
    view->indices[name] = std::move(state);
  }
  view_ = std::move(view);

  if (!read_only_) {
    sweep_orphan_segments(*view_);
    wal_ = std::make_unique<WalWriter>(dir_ + "/" + kWalFile);
  }
}

void Store::require_writable(const char* op) const {
  if (read_only_) {
    throw StoreError(std::string("store: ") + op + " on a read-only store");
  }
}

std::shared_ptr<const detail::StoreView> Store::current_view() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return view_;
}

Store::IndexViewPtr Store::find_index(const std::string& index) const {
  const auto view = current_view();
  const auto it = view->indices.find(index);
  return it == view->indices.end() ? nullptr : it->second;
}

void Store::publish_view(std::shared_ptr<detail::StoreView> next) {
  std::shared_ptr<const detail::StoreView> old;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    old = std::move(view_);
    view_ = std::move(next);
  }
  // `old` (and with it any retired segment handles the new view dropped)
  // is released outside the publish lock.
}

void Store::publish_index(const std::string& index, IndexViewPtr next) {
  const auto cur = current_view();
  auto next_view = std::make_shared<detail::StoreView>();
  next_view->generation = cur->generation + 1;
  next_view->indices = cur->indices;
  next_view->indices[index] = std::move(next);
  publish_view(std::move(next_view));
}

Snapshot Store::snapshot() const {
  ctx_->counters.snapshots.fetch_add(1, std::memory_order_relaxed);
  return Snapshot(current_view(), ctx_);
}

std::uint64_t Store::append(const std::string& index, const util::Json& doc) {
  require_writable("append");
  std::lock_guard<std::mutex> lock(writer_mu_);
  const auto old = find_index(index);
  auto next = old ? std::make_shared<detail::IndexView>(*old)
                  : std::make_shared<detail::IndexView>();
  const std::uint64_t seq = next->sealed_docs + next->memtable_count;
  wal_->append({index, seq, doc.dump()});
  auto doc_ptr = std::make_shared<const util::Json>(doc);
  if (!next->chunks.empty() &&
      next->chunks.back()->docs.size() < kMemChunkDocs) {
    // Chunks are immutable once published: replace the tail chunk with a
    // copy (shared doc pointers, not documents) carrying the new doc.
    auto chunk = std::make_shared<detail::MemChunk>(*next->chunks.back());
    chunk->docs.push_back(std::move(doc_ptr));
    next->chunks.back() = std::move(chunk);
  } else {
    auto chunk = std::make_shared<detail::MemChunk>();
    chunk->docs.reserve(kMemChunkDocs);
    chunk->docs.push_back(std::move(doc_ptr));
    next->chunks.push_back(std::move(chunk));
  }
  ++next->memtable_count;
  publish_index(index, std::move(next));
  if (config_.wal_batch_docs > 0 &&
      wal_->pending_docs() >= config_.wal_batch_docs) {
    wal_->commit();
  }
  return seq;
}

void Store::flush() {
  require_writable("flush");
  std::lock_guard<std::mutex> lock(writer_mu_);
  wal_->commit();
}

std::string Store::segment_path(const std::string& index) {
  return std::string(kSegmentDir) + "/" + sanitize(index) + "-" +
         std::to_string(next_segment_id_++) + ".seg";
}

void Store::seal_locked(const std::string& index) {
  const auto old = find_index(index);
  if (!old || old->memtable_count == 0) return;
  failpoint("seal.begin");

  std::vector<const util::Json*> docs;
  docs.reserve(old->memtable_count);
  for (const auto& chunk : old->chunks) {
    for (const auto& doc : chunk->docs) docs.push_back(doc.get());
  }

  const std::string file = segment_path(index);
  auto built = write_segment(dir_ + "/" + file, index, old->sealed_docs, docs,
                             config_.time_field, config_.hot_fields);
  failpoint("seal.segment_written");
  auto handle = std::make_shared<detail::SegmentHandle>(
      ctx_, file, built.info, std::move(built.summaries));

  fold_rollups(index, docs);

  auto next = std::make_shared<detail::IndexView>(*old);
  next->sealed_docs += next->memtable_count;
  next->memtable_count = 0;
  next->chunks.clear();
  next->segments.push_back(std::move(handle));

  // Segment first, then manifest, then publish, then the WAL rotation: a
  // crash between any two steps leaves a state the replay path
  // reconstructs (orphan segment file, or sealed docs still present in
  // the WAL — skipped by sequence number).
  const auto cur = current_view();
  auto next_view = std::make_shared<detail::StoreView>();
  next_view->generation = cur->generation + 1;
  next_view->indices = cur->indices;
  next_view->indices[index] = std::move(next);
  write_manifest(*next_view);
  failpoint("seal.manifest_written");
  publish_view(std::move(next_view));
  ctx_->counters.seals.fetch_add(1, std::memory_order_relaxed);
  rotate_wal(*current_view());
  failpoint("seal.wal_rotated");
}

void Store::seal(const std::string& index) {
  require_writable("seal");
  std::lock_guard<std::mutex> lock(writer_mu_);
  seal_locked(index);
}

void Store::seal_all() {
  require_writable("seal_all");
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Pin the view: seal_locked publishes a successor each iteration, and
  // iterating the shared map through an unpinned temporary would leave
  // the loop walking freed nodes once the old view's last ref drops.
  const auto view = current_view();
  for (const auto& name : view->indices) {
    seal_locked(name.first);
  }
}

void Store::merge_segments_locked(const std::string& index, std::size_t first,
                                  std::size_t count) {
  const auto old = find_index(index);
  if (!old || count < 2 || first + count > old->segments.size()) return;
  failpoint("compact.begin");

  // Parse every document of the merged range up front; the pointer span
  // for write_segment is taken only after `parsed` stops growing.
  std::vector<util::Json> parsed;
  for (std::size_t i = first; i < first + count; ++i) {
    const auto seg = old->segments[i]->load();
    seg->for_each_doc(false, [&](std::uint64_t, std::string_view text) {
      parsed.push_back(util::Json::parse(text));
      return true;
    });
  }
  std::vector<const util::Json*> docs;
  docs.reserve(parsed.size());
  for (const auto& doc : parsed) docs.push_back(&doc);

  const std::uint64_t base_seq = old->segments[first]->info.base_seq;
  const std::string file = segment_path(index);
  auto built = write_segment(dir_ + "/" + file, index, base_seq, docs,
                             config_.time_field, config_.hot_fields);
  failpoint("compact.segment_written");
  auto merged = std::make_shared<detail::SegmentHandle>(
      ctx_, file, built.info, std::move(built.summaries));

  auto next = std::make_shared<detail::IndexView>(*old);
  std::vector<std::shared_ptr<detail::SegmentHandle>> retired(
      next->segments.begin() + static_cast<std::ptrdiff_t>(first),
      next->segments.begin() + static_cast<std::ptrdiff_t>(first + count));
  next->segments.erase(
      next->segments.begin() + static_cast<std::ptrdiff_t>(first),
      next->segments.begin() + static_cast<std::ptrdiff_t>(first + count));
  next->segments.insert(
      next->segments.begin() + static_cast<std::ptrdiff_t>(first),
      std::move(merged));

  const auto cur = current_view();
  auto next_view = std::make_shared<detail::StoreView>();
  next_view->generation = cur->generation + 1;
  next_view->indices = cur->indices;
  next_view->indices[index] = std::move(next);
  // Manifest first (crash here = old files orphaned but still listed
  // nowhere dangerous), then retire, then publish. Deletion itself is
  // deferred to the last reference: snapshots pinning the old view keep
  // the files alive until they release it.
  write_manifest(*next_view);
  failpoint("compact.manifest_written");
  for (const auto& handle : retired) {
    handle->retired.store(true, std::memory_order_release);
  }
  ctx_->counters.segments_retired.fetch_add(retired.size(),
                                            std::memory_order_relaxed);
  ctx_->counters.compactions.fetch_add(1, std::memory_order_relaxed);
  publish_view(std::move(next_view));
  retired.clear();  // last writer-side refs; unpinned files unlink here
  failpoint("compact.retired");
}

void Store::compact_locked(const std::string& index) {
  const auto state = find_index(index);
  if (!state || state->segments.size() < 2) return;
  merge_segments_locked(index, 0, state->segments.size());
}

void Store::compact(const std::string& index) {
  require_writable("compact");
  std::lock_guard<std::mutex> lock(writer_mu_);
  compact_locked(index);
}

void Store::tiered_compact_locked(const std::string& index) {
  const std::size_t fanin = config_.compact_fanin;
  if (fanin == 0) return;
  if (fanin == 1) {
    // Degenerate fanin: every maintenance pass merges everything.
    compact_locked(index);
    return;
  }
  const auto seal_min = std::max<std::uint64_t>(1, config_.seal_min_docs);
  const auto tier_of = [&](const detail::SegmentHandle& handle) {
    std::uint64_t size = std::max<std::uint64_t>(1, handle.info.docs / seal_min);
    std::size_t tier = 0;
    while (size >= fanin) {
      size /= fanin;
      ++tier;
    }
    return tier;
  };
  // Merge the leftmost run of `fanin` adjacent same-tier segments, then
  // rescan: a merge can promote its output a tier and cascade.
  for (;;) {
    const auto state = find_index(index);
    if (!state || state->segments.size() < fanin) return;
    const auto& segments = state->segments;
    std::size_t run_start = 0;
    std::size_t run_len = 1;
    bool merged = false;
    for (std::size_t i = 1; i <= segments.size(); ++i) {
      if (i < segments.size() &&
          tier_of(*segments[i]) == tier_of(*segments[run_start])) {
        ++run_len;
        if (run_len < fanin) continue;
        merge_segments_locked(index, run_start, fanin);
        merged = true;
        break;
      }
      run_start = i;
      run_len = 1;
    }
    if (!merged) return;
  }
}

void Store::maintain() {
  require_writable("maintain");
  std::lock_guard<std::mutex> lock(writer_mu_);
  wal_->commit();
  std::vector<std::string> names;
  const auto view = current_view();  // pin while iterating
  for (const auto& [name, state] : view->indices) {
    (void)state;
    names.push_back(name);
  }
  for (const auto& name : names) {
    const auto state = find_index(name);
    if (state && config_.seal_min_docs > 0 &&
        state->memtable_count >= config_.seal_min_docs) {
      seal_locked(name);
    }
  }
  for (const auto& name : names) {
    tiered_compact_locked(name);
  }
}

void Store::scan(const std::string& index, const ScanOptions& options,
                 const std::function<bool(const util::Json&)>& visit) const {
  snapshot().scan(index, options, visit);
}

std::optional<Store::ColumnAggregate> Store::aggregate_column(
    const std::string& index, const std::string& field,
    const std::string& range_field, std::optional<double> range_min,
    std::optional<double> range_max) const {
  return snapshot().aggregate_column(index, field, range_field, range_min,
                                     range_max);
}

std::uint64_t Store::doc_count(const std::string& index) const {
  const auto state = find_index(index);
  return state == nullptr ? 0 : state->sealed_docs + state->memtable_count;
}

std::vector<std::string> Store::indices() const {
  const auto view = current_view();
  std::vector<std::string> names;
  names.reserve(view->indices.size());
  for (const auto& [name, state] : view->indices) {
    (void)state;
    names.push_back(name);
  }
  return names;
}

std::uint64_t Store::total_docs() const {
  const auto view = current_view();
  std::uint64_t total = 0;
  for (const auto& [name, state] : view->indices) {
    (void)name;
    total += state->sealed_docs + state->memtable_count;
  }
  return total;
}

std::uint64_t Store::memtable_docs(const std::string& index) const {
  const auto state = find_index(index);
  return state == nullptr ? 0 : state->memtable_count;
}

std::uint64_t Store::segment_count(const std::string& index) const {
  const auto state = find_index(index);
  return state == nullptr ? 0 : state->segments.size();
}

const RollupSeries* Store::rollup(const std::string& index,
                                  const std::string& field) const {
  const auto it = rollups_.find(index);
  if (it == rollups_.end()) return nullptr;
  const auto fit = it->second.find(field);
  return fit == it->second.end() ? nullptr : &fit->second;
}

bool Store::is_columnar(const std::string& field) const {
  return ctx_->is_columnar(field);
}

StoreStats Store::stats() const {
  StoreStats out;
  out.wal_batches_replayed = wal_batches_replayed_;
  out.wal_tail_bytes_dropped = wal_tail_bytes_dropped_;
  out.wal_records_skipped_sealed = wal_records_skipped_sealed_;
  out.orphan_segments_removed = orphan_segments_removed_;
  const auto& c = ctx_->counters;
  out.seals = c.seals.load(std::memory_order_relaxed);
  out.compactions = c.compactions.load(std::memory_order_relaxed);
  out.scans = c.scans.load(std::memory_order_relaxed);
  out.segments_considered =
      c.segments_considered.load(std::memory_order_relaxed);
  out.segments_scanned = c.segments_scanned.load(std::memory_order_relaxed);
  out.segments_pruned_range =
      c.segments_pruned_range.load(std::memory_order_relaxed);
  out.segments_pruned_terms =
      c.segments_pruned_terms.load(std::memory_order_relaxed);
  out.segments_pruned_postings =
      c.segments_pruned_postings.load(std::memory_order_relaxed);
  out.postings_rows_seeked =
      c.postings_rows_seeked.load(std::memory_order_relaxed);
  out.snapshots = c.snapshots.load(std::memory_order_relaxed);
  out.segments_retired = c.segments_retired.load(std::memory_order_relaxed);
  out.segments_gc_deleted =
      c.segments_gc_deleted.load(std::memory_order_relaxed);
  const auto cache = ctx_->cache->stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_entries = cache.entries;
  out.cache_bytes = cache.bytes;
  return out;
}

void Store::fold_rollups(const std::string& index,
                         const std::vector<const util::Json*>& docs) {
  if (config_.rollup_fields.empty() || config_.rollup_bucket_ns == 0) {
    return;
  }
  const auto bucket_ns =
      static_cast<std::int64_t>(config_.rollup_bucket_ns);
  for (const auto& field : config_.rollup_fields) {
    auto& series = rollups_[index][field];
    for (const util::Json* doc : docs) {
      const auto ts = json_field_at(*doc, config_.time_field);
      const auto value = json_field_at(*doc, field);
      if (!ts.has_value() || !ts->is_number() || !value.has_value() ||
          !value->is_number()) {
        continue;
      }
      const auto t = static_cast<std::int64_t>(ts->as_double());
      const double v = value->as_double();
      auto& bucket = series[bucket_start(t, bucket_ns)];
      if (bucket.count == 0) {
        bucket.min = bucket.max = v;
      } else {
        bucket.min = std::min(bucket.min, v);
        bucket.max = std::max(bucket.max, v);
      }
      bucket.sum += v;
      ++bucket.count;
    }
  }
}

void Store::load_manifest(BuildMap& indices) {
  const std::string text = read_text_file(dir_ + "/" + kManifestFile);
  if (text.empty()) return;  // fresh store
  util::Json doc;
  try {
    doc = util::Json::parse(text);
    if (doc.at("version").as_int() != 1) {
      throw StoreError("store: unsupported manifest version in " + dir_);
    }
    next_segment_id_ =
        static_cast<std::uint64_t>(doc.at("next_segment_id").as_int());
    for (const auto& [name, entry] : doc.at("indices").as_object()) {
      auto& state = indices[name];
      if (!state) state = std::make_shared<detail::IndexView>();
      state->sealed_docs =
          static_cast<std::uint64_t>(entry.at("sealed_docs").as_int());
      for (const auto& seg : entry.at("segments").as_array()) {
        SegmentInfo info;
        info.index = name;
        info.docs = static_cast<std::uint64_t>(seg.at("docs").as_int());
        info.base_seq =
            static_cast<std::uint64_t>(seg.at("base_seq").as_int());
        info.has_time = seg.at("has_time").as_bool();
        info.min_ts = seg.at("min_ts").as_int();
        info.max_ts = seg.at("max_ts").as_int();
        std::map<std::string, ColumnSummary> summaries;
        for (const auto& [field, summary] :
             seg.at("columns").as_object()) {
          summaries[field] = summary_from_json(summary);
        }
        state->segments.push_back(std::make_shared<detail::SegmentHandle>(
            ctx_, seg.at("file").as_string(), std::move(info),
            std::move(summaries)));
      }
    }
    if (doc.contains("rollups")) {
      for (const auto& [name, fields] : doc.at("rollups").as_object()) {
        for (const auto& [field, buckets] : fields.as_object()) {
          RollupSeries& series = rollups_[name][field];
          for (const auto& row : buckets.as_array()) {
            const auto& cols = row.as_array();
            RollupBucket bucket;
            bucket.count = static_cast<std::uint64_t>(cols[1].as_int());
            bucket.min = cols[2].as_double();
            bucket.max = cols[3].as_double();
            bucket.sum = cols[4].as_double();
            series[cols[0].as_int()] = bucket;
          }
        }
      }
    }
  } catch (const util::JsonError& e) {
    throw StoreError("store: malformed manifest in " + dir_ + ": " +
                     e.what());
  }
}

void Store::write_manifest(const detail::StoreView& view) const {
  util::Json doc = util::Json::object();
  doc["version"] = 1;
  doc["next_segment_id"] = next_segment_id_;
  util::Json indices = util::Json::object();
  for (const auto& [name, state] : view.indices) {
    util::Json entry = util::Json::object();
    entry["sealed_docs"] = state->sealed_docs;
    util::JsonArray segments;
    for (const auto& handle : state->segments) {
      util::Json seg = util::Json::object();
      seg["file"] = handle->file;
      seg["docs"] = handle->info.docs;
      seg["base_seq"] = handle->info.base_seq;
      seg["has_time"] = handle->info.has_time;
      seg["min_ts"] = handle->info.min_ts;
      seg["max_ts"] = handle->info.max_ts;
      util::Json columns = util::Json::object();
      for (const auto& [field, summary] : handle->summaries) {
        columns[field] = summary_to_json(summary);
      }
      seg["columns"] = std::move(columns);
      segments.push_back(std::move(seg));
    }
    entry["segments"] = util::Json(std::move(segments));
    indices[name] = std::move(entry);
  }
  doc["indices"] = std::move(indices);
  util::Json rollups = util::Json::object();
  for (const auto& [name, fields] : rollups_) {
    util::Json per_field = util::Json::object();
    for (const auto& [field, series] : fields) {
      util::JsonArray rows;
      for (const auto& [start, bucket] : series) {
        util::JsonArray row;
        row.push_back(start);
        row.push_back(bucket.count);
        row.push_back(bucket.min);
        row.push_back(bucket.max);
        row.push_back(bucket.sum);
        rows.push_back(util::Json(std::move(row)));
      }
      per_field[field] = util::Json(std::move(rows));
    }
    rollups[name] = std::move(per_field);
  }
  doc["rollups"] = std::move(rollups);

  const std::string tmp = dir_ + "/MANIFEST.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw StoreError("store: cannot write " + tmp);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) throw StoreError("store: write failed on " + tmp);
  }
  failpoint("manifest.tmp_written");
  fs::rename(tmp, dir_ + "/" + kManifestFile);
}

void Store::sweep_orphan_segments(const detail::StoreView& view) {
  std::set<std::string> keep;
  for (const auto& [name, state] : view.indices) {
    (void)name;
    for (const auto& handle : state->segments) keep.insert(handle->file);
  }
  std::error_code ec;
  fs::directory_iterator it(dir_ + "/" + kSegmentDir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string rel =
        std::string(kSegmentDir) + "/" + entry.path().filename().string();
    if (keep.count(rel) != 0) continue;
    fs::remove(entry.path(), ec);
    if (!ec) ++orphan_segments_removed_;
  }
}

void Store::rotate_wal(const detail::StoreView& view) {
  // Rewrite the WAL down to the documents still unsealed (other indices'
  // memtables), then swap it in atomically. Crashing anywhere here is
  // safe: the old WAL's already-sealed records replay as skipped.
  wal_.reset();
  const std::string tmp = dir_ + "/wal.tmp";
  std::error_code ec;
  fs::remove(tmp, ec);
  {
    WalWriter writer(tmp);
    for (const auto& [name, state] : view.indices) {
      std::uint64_t seq = state->sealed_docs;
      for (const auto& chunk : state->chunks) {
        for (const auto& doc : chunk->docs) {
          writer.append({name, seq++, doc->dump()});
        }
      }
    }
    writer.commit();
  }
  failpoint("wal_rotate.tmp_written");
  fs::rename(tmp, dir_ + "/" + kWalFile);
  failpoint("wal_rotate.renamed");
  wal_ = std::make_unique<WalWriter>(dir_ + "/" + kWalFile);
}

Store::VerifyResult Store::verify(const std::string& dir) {
  VerifyResult result;
  const auto complain = [&](const std::string& what) {
    result.ok = false;
    result.errors.push_back(what);
  };

  const std::string manifest_text =
      read_text_file(dir + "/" + kManifestFile);
  if (!manifest_text.empty()) {
    util::Json doc;
    try {
      doc = util::Json::parse(manifest_text);
      for (const auto& [name, entry] : doc.at("indices").as_object()) {
        const auto sealed_docs =
            static_cast<std::uint64_t>(entry.at("sealed_docs").as_int());
        std::uint64_t counted = 0;
        std::uint64_t expect_base = 0;
        for (const auto& seg_entry : entry.at("segments").as_array()) {
          ++result.segments;
          const std::string file = seg_entry.at("file").as_string();
          const auto docs =
              static_cast<std::uint64_t>(seg_entry.at("docs").as_int());
          const auto base_seq = static_cast<std::uint64_t>(
              seg_entry.at("base_seq").as_int());
          if (base_seq != expect_base) {
            complain(name + ": segment " + file +
                     " breaks sequence continuity");
          }
          expect_base = base_seq + docs;
          counted += docs;
          try {
            const Segment seg = Segment::load(dir + "/" + file);
            if (seg.info().docs != docs || seg.info().index != name) {
              complain(name + ": segment " + file +
                       " disagrees with the manifest");
            }
            seg.for_each_doc(false, [&](std::uint64_t,
                                        std::string_view text) {
              try {
                (void)util::Json::parse(text);
              } catch (const util::JsonError&) {
                complain(name + ": segment " + file +
                         " holds an unparseable document");
                return false;
              }
              return true;
            });
            result.sealed_docs += seg.info().docs;
          } catch (const StoreError& e) {
            complain(e.what());
          }
        }
        if (counted != sealed_docs) {
          complain(name + ": sealed_docs " + std::to_string(sealed_docs) +
                   " != sum of segment docs " + std::to_string(counted));
        }
      }
    } catch (const util::JsonError& e) {
      complain("manifest: " + std::string(e.what()));
      return result;
    }
  }

  const WalReplay replay = replay_wal(dir + "/" + kWalFile);
  result.wal_docs = replay.records.size();
  result.wal_tail_bytes_dropped = replay.tail_bytes_dropped;
  for (const auto& record : replay.records) {
    try {
      (void)util::Json::parse(record.doc);
    } catch (const util::JsonError&) {
      complain("wal: unparseable document for index " + record.index);
      break;
    }
  }
  return result;
}

}  // namespace p4s::store
