#include "store/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace p4s::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFile = "MANIFEST.json";
constexpr const char* kWalFile = "wal.log";
constexpr const char* kSegmentDir = "seg";

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Index names appear in segment file names; keep them filesystem-safe.
/// Uniqueness comes from the numeric segment id, not the sanitized name.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

std::int64_t bucket_start(std::int64_t t, std::int64_t bucket) {
  std::int64_t q = t / bucket;
  if (t % bucket != 0 && t < 0) --q;
  return q * bucket;
}

util::Json summary_to_json(const ColumnSummary& s) {
  util::Json j = util::Json::object();
  j["count"] = s.count;
  j["min"] = s.min;
  j["max"] = s.max;
  j["sum"] = s.sum;
  return j;
}

ColumnSummary summary_from_json(const util::Json& j) {
  ColumnSummary s;
  s.count = static_cast<std::uint64_t>(j.at("count").as_int());
  s.min = j.at("min").as_double();
  s.max = j.at("max").as_double();
  s.sum = j.at("sum").as_double();
  return s;
}

}  // namespace

const Segment& Store::SegmentHandle::get(const std::string& dir) const {
  if (!loaded) {
    loaded = std::make_unique<Segment>(Segment::load(dir + "/" + file));
    if (loaded->info().docs != info.docs ||
        loaded->info().base_seq != info.base_seq) {
      throw StoreError("store: segment " + file +
                       " disagrees with the manifest");
    }
  }
  return *loaded;
}

Store::Store(std::string dir, StoreConfig config)
    : dir_(std::move(dir)), config_(std::move(config)) {
  fs::create_directories(dir_ + "/" + kSegmentDir);
  load_manifest();
  // Replay the WAL tail: everything not yet counted as sealed goes back
  // into the memtables, in append order.
  WalReplay replay = replay_wal(dir_ + "/" + kWalFile);
  stats_.wal_batches_replayed = replay.batches;
  stats_.wal_tail_bytes_dropped = replay.tail_bytes_dropped;
  for (auto& record : replay.records) {
    auto& state = indices_[record.index];
    if (record.seq < state.sealed_docs + state.memtable.size()) {
      ++stats_.wal_records_skipped_sealed;
      continue;
    }
    try {
      state.memtable.push_back(util::Json::parse(record.doc));
    } catch (const util::JsonError& e) {
      throw StoreError("store: WAL document failed to parse: " +
                       std::string(e.what()));
    }
  }
  wal_ = std::make_unique<WalWriter>(dir_ + "/" + kWalFile);
}

std::uint64_t Store::append(const std::string& index,
                            const util::Json& doc) {
  auto& state = indices_[index];
  const std::uint64_t seq = state.sealed_docs + state.memtable.size();
  wal_->append({index, seq, doc.dump()});
  state.memtable.push_back(doc);
  if (config_.wal_batch_docs > 0 &&
      wal_->pending_docs() >= config_.wal_batch_docs) {
    wal_->commit();
  }
  return seq;
}

void Store::flush() { wal_->commit(); }

std::string Store::segment_path(const std::string& index) const {
  return std::string(kSegmentDir) + "/" + sanitize(index) + "-" +
         std::to_string(next_segment_id_) + ".seg";
}

void Store::seal(const std::string& index) {
  const auto it = indices_.find(index);
  if (it == indices_.end() || it->second.memtable.empty()) return;
  auto& state = it->second;

  SegmentHandle handle;
  handle.file = segment_path(index);
  ++next_segment_id_;
  auto built =
      write_segment(dir_ + "/" + handle.file, index, state.sealed_docs,
                    state.memtable, config_.time_field, config_.hot_fields);
  handle.info = built.info;
  handle.summaries = std::move(built.summaries);

  fold_rollups(index, state.memtable);
  state.sealed_docs += state.memtable.size();
  state.memtable.clear();
  state.segments.push_back(std::move(handle));
  ++stats_.seals;

  // Segment first, then manifest, then the WAL rotation: a crash between
  // any two steps leaves a state the replay path reconstructs (orphan
  // segment file, or sealed docs still present in the WAL — skipped by
  // sequence number).
  write_manifest();
  rotate_wal();
}

void Store::seal_all() {
  for (const auto& name : indices()) seal(name);
}

void Store::compact(const std::string& index) {
  const auto it = indices_.find(index);
  if (it == indices_.end() || it->second.segments.size() < 2) return;
  auto& state = it->second;

  std::vector<util::Json> docs;
  docs.reserve(state.sealed_docs);
  for (const auto& handle : state.segments) {
    handle.get(dir_).for_each_doc(
        false, [&](std::uint64_t, std::string_view text) {
          docs.push_back(util::Json::parse(std::string(text)));
          return true;
        });
  }

  const std::uint64_t base_seq = state.segments.front().info.base_seq;
  SegmentHandle merged;
  merged.file = segment_path(index);
  ++next_segment_id_;
  auto built = write_segment(dir_ + "/" + merged.file, index, base_seq,
                             docs, config_.time_field, config_.hot_fields);
  merged.info = built.info;
  merged.summaries = std::move(built.summaries);

  std::vector<std::string> old_files;
  for (const auto& handle : state.segments) old_files.push_back(handle.file);
  state.segments.clear();
  state.segments.push_back(std::move(merged));
  ++stats_.compactions;
  write_manifest();
  for (const auto& file : old_files) {
    std::error_code ec;
    fs::remove(dir_ + "/" + file, ec);  // orphan on failure is harmless
  }
}

void Store::maintain() {
  flush();
  for (auto& [name, state] : indices_) {
    if (config_.seal_min_docs > 0 &&
        state.memtable.size() >= config_.seal_min_docs) {
      seal(name);
    }
    if (config_.compact_fanin > 0 &&
        state.segments.size() >= config_.compact_fanin) {
      compact(name);
    }
  }
}

bool Store::prune_by_range(const SegmentHandle& handle,
                           const ScanOptions& options) const {
  if (options.range_field.empty()) return false;
  const auto it = handle.summaries.find(options.range_field);
  if (it == handle.summaries.end()) return false;  // not columnar: scan
  const ColumnSummary& s = it->second;
  // No document in the segment carries the field numerically -> no
  // document can match a range filter on it.
  if (s.count == 0) return true;
  if (options.range_min.has_value() && s.max < *options.range_min) {
    return true;
  }
  if (options.range_max.has_value() && s.min > *options.range_max) {
    return true;
  }
  return false;
}

void Store::scan(const std::string& index, const ScanOptions& options,
                 const std::function<bool(const util::Json&)>& visit) const {
  const auto it = indices_.find(index);
  if (it == indices_.end()) return;
  const auto& state = it->second;
  ++stats_.scans;

  bool stopped = false;
  const auto scan_segment = [&](const SegmentHandle& handle) {
    ++stats_.segments_considered;
    if (prune_by_range(handle, options)) {
      ++stats_.segments_pruned_range;
      return;
    }
    // Term pruning needs the bloom bits, i.e. the loaded segment — still
    // far cheaper than parsing every document JSON below.
    for (const auto& key : options.term_keys) {
      if (!handle.get(dir_).maybe_contains_term(key)) {
        ++stats_.segments_pruned_terms;
        return;
      }
    }
    ++stats_.segments_scanned;
    handle.get(dir_).for_each_doc(
        options.newest_first,
        [&](std::uint64_t, std::string_view text) {
          const util::Json doc = util::Json::parse(text);
          if (!visit(doc)) {
            stopped = true;
            return false;
          }
          return true;
        });
  };
  const auto scan_memtable = [&] {
    if (options.newest_first) {
      for (auto d = state.memtable.rbegin();
           !stopped && d != state.memtable.rend(); ++d) {
        if (!visit(*d)) stopped = true;
      }
    } else {
      for (const auto& doc : state.memtable) {
        if (stopped) break;
        if (!visit(doc)) stopped = true;
      }
    }
  };

  if (options.newest_first) {
    scan_memtable();
    for (auto s = state.segments.rbegin();
         !stopped && s != state.segments.rend(); ++s) {
      scan_segment(*s);
    }
  } else {
    for (const auto& handle : state.segments) {
      if (stopped) break;
      scan_segment(handle);
    }
    if (!stopped) scan_memtable();
  }
}

std::optional<Store::ColumnAggregate> Store::aggregate_column(
    const std::string& index, const std::string& field,
    const std::string& range_field, std::optional<double> range_min,
    std::optional<double> range_max) const {
  if (!is_columnar(field)) return std::nullopt;
  const bool ranged = !range_field.empty();
  if (ranged && !is_columnar(range_field)) return std::nullopt;

  const auto in_range = [&](double v) {
    if (range_min.has_value() && v < *range_min) return false;
    if (range_max.has_value() && v > *range_max) return false;
    return true;
  };
  ColumnAggregate agg;
  const auto fold = [&](double v) {
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    agg.sum += v;
    ++agg.count;
  };
  const auto fold_summary = [&](const ColumnSummary& s) {
    if (s.count == 0) return;
    if (agg.count == 0) {
      agg.min = s.min;
      agg.max = s.max;
    } else {
      agg.min = std::min(agg.min, s.min);
      agg.max = std::max(agg.max, s.max);
    }
    agg.sum += s.sum;
    agg.count += s.count;
  };

  const auto it = indices_.find(index);
  if (it == indices_.end()) return agg;
  for (const auto& handle : it->second.segments) {
    const auto fit = handle.summaries.find(field);
    const ColumnSummary& fs =
        fit == handle.summaries.end() ? ColumnSummary{} : fit->second;
    if (!ranged) {
      fold_summary(fs);
      continue;
    }
    const auto rit = handle.summaries.find(range_field);
    const ColumnSummary& rs =
        rit == handle.summaries.end() ? ColumnSummary{} : rit->second;
    if (rs.count == 0) continue;  // no document can pass the range filter
    const bool fully_inside =
        (!range_min.has_value() || rs.min >= *range_min) &&
        (!range_max.has_value() || rs.max <= *range_max);
    if (fully_inside && range_field == field) {
      // Every document carrying the field passes the filter on it.
      fold_summary(fs);
      continue;
    }
    if (rs.max < range_min.value_or(rs.max) ||
        rs.min > range_max.value_or(rs.min)) {
      continue;  // disjoint: prune
    }
    // Partial overlap (or the filter is on another column): decode the
    // columns and fold row by row — still no document JSON parsing.
    const Segment& seg = handle.get(dir_);
    const auto range_vals = seg.decode_column(range_field);
    const auto field_vals =
        field == range_field ? range_vals : seg.decode_column(field);
    for (std::size_t i = 0; i < field_vals.size(); ++i) {
      if (!range_vals[i].has_value() || !in_range(*range_vals[i])) continue;
      if (!field_vals[i].has_value()) continue;
      fold(*field_vals[i]);
    }
  }
  // Memtable rows are walked directly (they are already parsed JSON).
  for (const auto& doc : it->second.memtable) {
    if (ranged) {
      const auto rv = json_field_at(doc, range_field);
      if (!rv.has_value() || !rv->is_number() || !in_range(rv->as_double())) {
        continue;
      }
    }
    const auto fv = json_field_at(doc, field);
    if (!fv.has_value() || !fv->is_number()) continue;
    fold(fv->as_double());
  }
  return agg;
}

std::uint64_t Store::doc_count(const std::string& index) const {
  const auto it = indices_.find(index);
  if (it == indices_.end()) return 0;
  return it->second.sealed_docs + it->second.memtable.size();
}

std::vector<std::string> Store::indices() const {
  std::vector<std::string> names;
  names.reserve(indices_.size());
  for (const auto& [name, state] : indices_) {
    (void)state;
    names.push_back(name);
  }
  return names;
}

std::uint64_t Store::total_docs() const {
  std::uint64_t total = 0;
  for (const auto& [name, state] : indices_) {
    (void)name;
    total += state.sealed_docs + state.memtable.size();
  }
  return total;
}

std::uint64_t Store::memtable_docs(const std::string& index) const {
  const auto it = indices_.find(index);
  return it == indices_.end() ? 0 : it->second.memtable.size();
}

std::uint64_t Store::segment_count(const std::string& index) const {
  const auto it = indices_.find(index);
  return it == indices_.end() ? 0 : it->second.segments.size();
}

const RollupSeries* Store::rollup(const std::string& index,
                                  const std::string& field) const {
  const auto it = rollups_.find(index);
  if (it == rollups_.end()) return nullptr;
  const auto fit = it->second.find(field);
  return fit == it->second.end() ? nullptr : &fit->second;
}

bool Store::is_columnar(const std::string& field) const {
  if (field == config_.time_field) return true;
  return std::find(config_.hot_fields.begin(), config_.hot_fields.end(),
                   field) != config_.hot_fields.end();
}

void Store::fold_rollups(const std::string& index,
                         const std::vector<util::Json>& docs) {
  if (config_.rollup_fields.empty() || config_.rollup_bucket_ns == 0) {
    return;
  }
  const auto bucket_ns =
      static_cast<std::int64_t>(config_.rollup_bucket_ns);
  for (const auto& field : config_.rollup_fields) {
    auto& series = rollups_[index][field];
    for (const auto& doc : docs) {
      const auto ts = json_field_at(doc, config_.time_field);
      const auto value = json_field_at(doc, field);
      if (!ts.has_value() || !ts->is_number() || !value.has_value() ||
          !value->is_number()) {
        continue;
      }
      const auto t = static_cast<std::int64_t>(ts->as_double());
      const double v = value->as_double();
      auto& bucket = series[bucket_start(t, bucket_ns)];
      if (bucket.count == 0) {
        bucket.min = bucket.max = v;
      } else {
        bucket.min = std::min(bucket.min, v);
        bucket.max = std::max(bucket.max, v);
      }
      bucket.sum += v;
      ++bucket.count;
    }
  }
}

void Store::load_manifest() {
  const std::string text = read_text_file(dir_ + "/" + kManifestFile);
  if (text.empty()) return;  // fresh store
  util::Json doc;
  try {
    doc = util::Json::parse(text);
    if (doc.at("version").as_int() != 1) {
      throw StoreError("store: unsupported manifest version in " + dir_);
    }
    next_segment_id_ =
        static_cast<std::uint64_t>(doc.at("next_segment_id").as_int());
    for (const auto& [name, entry] : doc.at("indices").as_object()) {
      IndexState& state = indices_[name];
      state.sealed_docs =
          static_cast<std::uint64_t>(entry.at("sealed_docs").as_int());
      for (const auto& seg : entry.at("segments").as_array()) {
        SegmentHandle handle;
        handle.file = seg.at("file").as_string();
        handle.info.index = name;
        handle.info.docs =
            static_cast<std::uint64_t>(seg.at("docs").as_int());
        handle.info.base_seq =
            static_cast<std::uint64_t>(seg.at("base_seq").as_int());
        handle.info.has_time = seg.at("has_time").as_bool();
        handle.info.min_ts = seg.at("min_ts").as_int();
        handle.info.max_ts = seg.at("max_ts").as_int();
        for (const auto& [field, summary] :
             seg.at("columns").as_object()) {
          handle.summaries[field] = summary_from_json(summary);
        }
        state.segments.push_back(std::move(handle));
      }
    }
    if (doc.contains("rollups")) {
      for (const auto& [name, fields] : doc.at("rollups").as_object()) {
        for (const auto& [field, buckets] : fields.as_object()) {
          RollupSeries& series = rollups_[name][field];
          for (const auto& row : buckets.as_array()) {
            const auto& cols = row.as_array();
            RollupBucket bucket;
            bucket.count = static_cast<std::uint64_t>(cols[1].as_int());
            bucket.min = cols[2].as_double();
            bucket.max = cols[3].as_double();
            bucket.sum = cols[4].as_double();
            series[cols[0].as_int()] = bucket;
          }
        }
      }
    }
  } catch (const util::JsonError& e) {
    throw StoreError("store: malformed manifest in " + dir_ + ": " +
                     e.what());
  }
}

void Store::write_manifest() const {
  util::Json doc = util::Json::object();
  doc["version"] = 1;
  doc["next_segment_id"] = next_segment_id_;
  util::Json indices = util::Json::object();
  for (const auto& [name, state] : indices_) {
    util::Json entry = util::Json::object();
    entry["sealed_docs"] = state.sealed_docs;
    util::JsonArray segments;
    for (const auto& handle : state.segments) {
      util::Json seg = util::Json::object();
      seg["file"] = handle.file;
      seg["docs"] = handle.info.docs;
      seg["base_seq"] = handle.info.base_seq;
      seg["has_time"] = handle.info.has_time;
      seg["min_ts"] = handle.info.min_ts;
      seg["max_ts"] = handle.info.max_ts;
      util::Json columns = util::Json::object();
      for (const auto& [field, summary] : handle.summaries) {
        columns[field] = summary_to_json(summary);
      }
      seg["columns"] = std::move(columns);
      segments.push_back(std::move(seg));
    }
    entry["segments"] = util::Json(std::move(segments));
    indices[name] = std::move(entry);
  }
  doc["indices"] = std::move(indices);
  util::Json rollups = util::Json::object();
  for (const auto& [name, fields] : rollups_) {
    util::Json per_field = util::Json::object();
    for (const auto& [field, series] : fields) {
      util::JsonArray rows;
      for (const auto& [start, bucket] : series) {
        util::JsonArray row;
        row.push_back(start);
        row.push_back(bucket.count);
        row.push_back(bucket.min);
        row.push_back(bucket.max);
        row.push_back(bucket.sum);
        rows.push_back(util::Json(std::move(row)));
      }
      per_field[field] = util::Json(std::move(rows));
    }
    rollups[name] = std::move(per_field);
  }
  doc["rollups"] = std::move(rollups);

  const std::string tmp = dir_ + "/MANIFEST.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw StoreError("store: cannot write " + tmp);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) throw StoreError("store: write failed on " + tmp);
  }
  fs::rename(tmp, dir_ + "/" + kManifestFile);
}

void Store::rotate_wal() {
  // Rewrite the WAL down to the documents still unsealed (other indices'
  // memtables), then swap it in atomically. Crashing anywhere here is
  // safe: the old WAL's already-sealed records replay as skipped.
  wal_.reset();
  const std::string tmp = dir_ + "/wal.tmp";
  std::error_code ec;
  fs::remove(tmp, ec);
  {
    WalWriter writer(tmp);
    for (const auto& [name, state] : indices_) {
      for (std::size_t i = 0; i < state.memtable.size(); ++i) {
        writer.append(
            {name, state.sealed_docs + i, state.memtable[i].dump()});
      }
    }
    writer.commit();
  }
  fs::rename(tmp, dir_ + "/" + kWalFile);
  wal_ = std::make_unique<WalWriter>(dir_ + "/" + kWalFile);
}

Store::VerifyResult Store::verify(const std::string& dir) {
  VerifyResult result;
  const auto complain = [&](const std::string& what) {
    result.ok = false;
    result.errors.push_back(what);
  };

  const std::string manifest_text =
      read_text_file(dir + "/" + kManifestFile);
  if (!manifest_text.empty()) {
    util::Json doc;
    try {
      doc = util::Json::parse(manifest_text);
      for (const auto& [name, entry] : doc.at("indices").as_object()) {
        const auto sealed_docs =
            static_cast<std::uint64_t>(entry.at("sealed_docs").as_int());
        std::uint64_t counted = 0;
        std::uint64_t expect_base = 0;
        for (const auto& seg_entry : entry.at("segments").as_array()) {
          ++result.segments;
          const std::string file = seg_entry.at("file").as_string();
          const auto docs =
              static_cast<std::uint64_t>(seg_entry.at("docs").as_int());
          const auto base_seq = static_cast<std::uint64_t>(
              seg_entry.at("base_seq").as_int());
          if (base_seq != expect_base) {
            complain(name + ": segment " + file +
                     " breaks sequence continuity");
          }
          expect_base = base_seq + docs;
          counted += docs;
          try {
            const Segment seg = Segment::load(dir + "/" + file);
            if (seg.info().docs != docs || seg.info().index != name) {
              complain(name + ": segment " + file +
                       " disagrees with the manifest");
            }
            seg.for_each_doc(false, [&](std::uint64_t,
                                        std::string_view text) {
              try {
                (void)util::Json::parse(text);
              } catch (const util::JsonError&) {
                complain(name + ": segment " + file +
                         " holds an unparseable document");
                return false;
              }
              return true;
            });
            result.sealed_docs += seg.info().docs;
          } catch (const StoreError& e) {
            complain(e.what());
          }
        }
        if (counted != sealed_docs) {
          complain(name + ": sealed_docs " + std::to_string(sealed_docs) +
                   " != sum of segment docs " + std::to_string(counted));
        }
      }
    } catch (const util::JsonError& e) {
      complain("manifest: " + std::string(e.what()));
      return result;
    }
  }

  const WalReplay replay = replay_wal(dir + "/" + kWalFile);
  result.wal_docs = replay.records.size();
  result.wal_tail_bytes_dropped = replay.tail_bytes_dropped;
  for (const auto& record : replay.records) {
    try {
      (void)util::Json::parse(record.doc);
    } catch (const util::JsonError&) {
      complain("wal: unparseable document for index " + record.index);
      break;
    }
  }
  return result;
}

}  // namespace p4s::store
