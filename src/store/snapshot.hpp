// Snapshot-isolated reads over the store.
//
// The store publishes its state as an immutable, refcounted StoreView:
// per index, the sealed-segment list plus the memtable as a list of
// immutable chunks. Every mutation (append, seal, compact) builds a new
// view sharing everything untouched and atomically swaps the current
// pointer; a Snapshot pins one view by holding the shared_ptr. That
// gives readers on any thread a frozen, consistent store — a fixed doc
// count, a fixed segment list, fixed memtable contents — no matter how
// many documents the writer ingests, seals, or compacts meanwhile.
//
// Segment GC rule: compaction never deletes a sealed file directly. It
// marks the superseded handles retired and drops its references; the
// file is unlinked by the last SegmentHandle reference to die, which is
// the last Snapshot still reading it. A pinned segment is therefore
// never deleted underneath a reader (the concurrency stress test holds
// snapshots across thousands of compactions to prove it).
//
// Threading contract: one writer (the Store's mutating methods serialize
// on an internal mutex), any number of concurrent Snapshot readers.
// Snapshots must not outlive their Store.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/block_cache.hpp"
#include "store/segment.hpp"
#include "util/json.hpp"

namespace p4s::store {

struct ScanOptions {
  /// Range filter used for segment pruning (and nothing else — the
  /// caller re-checks every visited document). Pruning applies when the
  /// field is the time field or a hot column.
  std::string range_field;
  std::optional<double> range_min;
  std::optional<double> range_max;
  /// Term keys (term_key()) that matching documents must all contain.
  /// Segments whose bloom filter rules one out are skipped; when a
  /// key's field carries posting lists, the scan seeks straight to the
  /// matching rows instead of parsing the whole segment.
  std::vector<std::string> term_keys;
  bool newest_first = false;
};

struct ColumnAggregate {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

namespace detail {

/// Cross-thread counters shared by the store, its snapshots, and its
/// segment handles (handles may die on reader threads after the writer
/// retired them, so the counters are refcounted alongside them).
struct StoreCounters {
  // Write path.
  std::atomic<std::uint64_t> seals{0};
  std::atomic<std::uint64_t> compactions{0};
  // Scan-side pruning.
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> segments_considered{0};
  std::atomic<std::uint64_t> segments_scanned{0};
  std::atomic<std::uint64_t> segments_pruned_range{0};
  std::atomic<std::uint64_t> segments_pruned_terms{0};
  std::atomic<std::uint64_t> segments_pruned_postings{0};
  std::atomic<std::uint64_t> postings_rows_seeked{0};
  // Serving.
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> segments_retired{0};
  std::atomic<std::uint64_t> segments_gc_deleted{0};
};

/// Everything the read path needs, shared (refcounted) between the
/// Store, its snapshots, and its segment handles: the directory, the
/// columnar field configuration, the block cache, and the counters.
struct ReadContext {
  std::string dir;
  std::string time_field;
  std::vector<std::string> hot_fields;
  std::unique_ptr<BlockCache> cache;
  StoreCounters counters;

  bool is_columnar(const std::string& field) const;
};

/// An immutable slice of one index's memtable. Documents are shared
/// pointers so republishing a chunk on append copies pointers, not JSON.
struct MemChunk {
  std::vector<std::shared_ptr<const util::Json>> docs;
};

/// One sealed segment: manifest metadata resident, the decoded blocks
/// loaded through the block cache on demand. Refcounted — views and
/// snapshots share handles; when `retired` is set (compaction replaced
/// it), the last reference to die unlinks the file.
struct SegmentHandle {
  SegmentHandle(std::shared_ptr<ReadContext> context, std::string file_name,
                SegmentInfo segment_info,
                std::map<std::string, ColumnSummary> column_summaries)
      : ctx(std::move(context)),
        file(std::move(file_name)),
        info(std::move(segment_info)),
        summaries(std::move(column_summaries)) {}
  ~SegmentHandle();

  SegmentHandle(const SegmentHandle&) = delete;
  SegmentHandle& operator=(const SegmentHandle&) = delete;

  /// Load (or fetch from the block cache) the decoded segment. The
  /// returned shared_ptr keeps it alive across cache evictions.
  std::shared_ptr<const Segment> load() const;

  std::shared_ptr<ReadContext> ctx;
  std::string file;  // relative to ctx->dir
  SegmentInfo info;
  std::map<std::string, ColumnSummary> summaries;
  std::atomic<bool> retired{false};
};

struct IndexView {
  std::uint64_t sealed_docs = 0;  // == next memtable base sequence
  std::uint64_t memtable_count = 0;
  std::vector<std::shared_ptr<SegmentHandle>> segments;
  std::vector<std::shared_ptr<const MemChunk>> chunks;
};

struct StoreView {
  std::uint64_t generation = 0;
  std::map<std::string, std::shared_ptr<const IndexView>> indices;
};

}  // namespace detail

/// A pinned, immutable view of the store. Cheap to take (two shared_ptr
/// copies), safe to query from any thread, and guaranteed stable: the
/// doc counts, segment list, and every document visible at creation stay
/// exactly as they were until the snapshot is released.
class Snapshot {
 public:
  /// Monotonic view generation (bumps on every store mutation).
  std::uint64_t generation() const { return view_->generation; }

  std::uint64_t doc_count(const std::string& index) const;
  std::uint64_t total_docs() const;
  std::vector<std::string> indices() const;
  std::uint64_t segment_count(const std::string& index) const;
  std::uint64_t memtable_docs(const std::string& index) const;

  /// Visit documents in sequence order (or reversed); the visitor
  /// returns false to stop. Pruning is only ever an over-approximation
  /// of the options: every document that could match them is visited.
  void scan(const std::string& index, const ScanOptions& options,
            const std::function<bool(const util::Json&)>& visit) const;

  /// Columnar aggregation fast path; see Store::aggregate_column.
  std::optional<ColumnAggregate> aggregate_column(
      const std::string& index, const std::string& field,
      const std::string& range_field, std::optional<double> range_min,
      std::optional<double> range_max) const;

  /// True when `field` is encoded columnar (time field or hot field).
  bool is_columnar(const std::string& field) const {
    return ctx_->is_columnar(field);
  }

 private:
  friend class Store;
  Snapshot(std::shared_ptr<const detail::StoreView> view,
           std::shared_ptr<detail::ReadContext> ctx)
      : view_(std::move(view)), ctx_(std::move(ctx)) {}

  const detail::IndexView* find_index(const std::string& index) const;

  std::shared_ptr<const detail::StoreView> view_;
  std::shared_ptr<detail::ReadContext> ctx_;
};

}  // namespace p4s::store
