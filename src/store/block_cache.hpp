// Sharded LRU cache of loaded segment blocks.
//
// Loading a sealed segment reads, checksums, and decodes the whole file
// (docs block, columns, bloom, postings) — expensive enough that the
// serving path must not repeat it per query. The cache bounds how many
// loaded segments stay resident: entries are charged their decoded size
// (Segment::approx_bytes()) against a byte capacity, keys are segment
// file names (unique — segment ids are monotonic), and eviction is LRU
// within each shard. Shards cut lock contention between concurrent
// readers: a key hashes to one shard, and each shard has its own mutex,
// LRU list, and slice of the capacity.
//
// Eviction only drops the cache's reference. Readers hold a
// shared_ptr<const Segment> for as long as they scan, so an evicted
// segment finishes its in-flight queries untouched and is simply
// reloaded on the next miss. capacity_bytes == 0 means unbounded (the
// pre-serving behavior: every loaded segment stays resident forever).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace p4s::store {

class Segment;

class BlockCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };

  /// `capacity_bytes` 0 = unbounded; `shards` is clamped to at least 1.
  explicit BlockCache(std::size_t capacity_bytes, std::size_t shards = 8);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Return the cached segment for `key`, or run `load` (under the
  /// shard lock, so concurrent misses on one key load once) and cache
  /// the result. `load` must return non-null or throw.
  std::shared_ptr<const Segment> get_or_load(
      const std::string& key,
      const std::function<std::shared_ptr<const Segment>()>& load);

  /// Drop `key` if cached (retired segments; no-op when absent).
  void erase(const std::string& key);

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Segment> segment;
    std::size_t charge = 0;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_bytes_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace p4s::store
