#include "store/wal.hpp"

#include <fstream>
#include <sstream>

#include "p4/hash.hpp"

namespace p4s::store {

namespace {

std::uint32_t payload_crc(std::string_view payload) {
  static const p4::Crc32 crc;
  return crc({reinterpret_cast<const std::uint8_t*>(payload.data()),
              payload.size()});
}

}  // namespace

WalWriter::WalWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app), path_(path) {
  if (!out_) throw StoreError("wal: cannot open " + path);
}

void WalWriter::append(const WalRecord& record) {
  put_blob(payload_, record.index);
  put_varint(payload_, record.seq);
  put_blob(payload_, record.doc);
  ++pending_docs_;
}

void WalWriter::commit() {
  if (pending_docs_ == 0) return;
  std::string frame;
  std::string payload;
  put_varint(payload, pending_docs_);
  payload += payload_;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, payload_crc(payload));
  frame += payload;
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) throw StoreError("wal: write failed on " + path_);
  payload_.clear();
  pending_docs_ = 0;
  ++batches_;
}

WalReplay replay_wal_bytes(std::string_view data) {
  WalReplay out;
  ByteReader in(data);
  while (in.remaining() > 0) {
    const std::size_t batch_start = in.pos();
    // Any inconsistency from here on is a damaged tail: rewind to the
    // batch boundary and stop.
    const auto stop = [&] {
      out.tail_bytes_dropped = data.size() - batch_start;
      return out;
    };
    auto len = in.u32();
    auto crc = in.u32();
    if (!len || !crc || *len > kWalMaxBatchBytes || *len > in.remaining()) {
      return stop();
    }
    auto payload = in.bytes(*len);
    if (!payload) return stop();
    if (payload_crc(*payload) != *crc) return stop();
    ByteReader body(*payload);
    auto count = body.varint();
    if (!count) return stop();
    std::vector<WalRecord> batch;
    batch.reserve(static_cast<std::size_t>(*count));
    for (std::uint64_t i = 0; i < *count; ++i) {
      auto index = body.blob();
      auto seq = body.varint();
      auto doc = body.blob();
      if (!index || !seq.has_value() || !doc) return stop();
      batch.push_back(
          {std::string(*index), *seq, std::string(*doc)});
    }
    // The batch is whole and checksummed: commit it to the replay.
    for (auto& record : batch) out.records.push_back(std::move(record));
    ++out.batches;
  }
  return out;
}

WalReplay replay_wal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no log yet: empty store
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  return replay_wal_bytes(data);
}

}  // namespace p4s::store
