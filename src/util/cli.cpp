#include "util/cli.hpp"

#include <algorithm>
#include <charconv>

namespace p4s::util {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known,
                 const std::vector<std::string>& switches) {
  const auto contains = [](const std::vector<std::string>& list,
                           const std::string& name) {
    return std::find(list.begin(), list.end(), name) != list.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const bool is_switch = contains(switches, name);
    if (!is_switch && !contains(known, name)) {
      errors_.push_back("unknown flag --" + name);
      continue;
    }
    if (!is_switch && !has_inline_value && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    values_[name] = std::move(value);
  }
}

double CliArgs::number_or(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v || v->empty()) return fallback;
  double out = 0.0;
  auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc() || p != v->data() + v->size()) return fallback;
  return out;
}

std::uint64_t CliArgs::uint_or(const std::string& flag,
                               std::uint64_t fallback) const {
  const auto v = get(flag);
  if (!v || v->empty()) return fallback;
  std::uint64_t out = 0;
  auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc() || p != v->data() + v->size()) return fallback;
  return out;
}

}  // namespace p4s::util
