// Leveled logging to stderr. The simulator is single-threaded by design
// (discrete-event), so no locking is needed; the sink is swappable so tests
// can capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace p4s::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the sink (default writes to stderr). Pass nullptr to restore
/// the default.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace p4s::util

#define P4S_LOG(level)                                       \
  if (static_cast<int>(level) <                              \
      static_cast<int>(::p4s::util::log_level())) {          \
  } else                                                     \
    ::p4s::util::detail::LogLine(level)

#define P4S_DEBUG() P4S_LOG(::p4s::util::LogLevel::kDebug)
#define P4S_INFO() P4S_LOG(::p4s::util::LogLevel::kInfo)
#define P4S_WARN() P4S_LOG(::p4s::util::LogLevel::kWarn)
#define P4S_ERROR() P4S_LOG(::p4s::util::LogLevel::kError)
