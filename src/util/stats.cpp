#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace p4s::util {

std::optional<double> jain_fairness(std::span<const double> allocations) {
  if (allocations.empty()) return std::nullopt;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return std::nullopt;  // idle: nothing is being shared
  const double n = static_cast<double>(allocations.size());
  return (sum * sum) / (n * sum_sq);
}

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace p4s::util
