#include "util/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace p4s::util {

std::int64_t Json::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* d = std::get_if<double>(&value_)) {
    return static_cast<std::int64_t>(*d);
  }
  throw JsonError("Json: not a number");
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw JsonError("Json: not a number");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("Json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

std::optional<Json> Json::find(const std::string& key) const {
  if (!is_object()) return std::nullopt;
  auto it = as_object().find(key);
  if (it == as_object().end()) return std::nullopt;
  return it->second;
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("Json: size() on non-container");
}

namespace {

void escape_to(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_to(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null so documents stay parseable.
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  (void)ec;
  out.append(buf.data(), ptr);
}

struct Dumper {
  int indent;
  std::string out;

  void newline(int depth) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void dump(const Json& j, int depth) {
    if (j.is_null()) {
      out += "null";
    } else if (j.is_bool()) {
      out += j.as_bool() ? "true" : "false";
    } else if (j.is_int()) {
      out += std::to_string(j.as_int());
    } else if (j.is_double()) {
      number_to(out, j.as_double());
    } else if (j.is_string()) {
      escape_to(out, j.as_string());
    } else if (j.is_array()) {
      const auto& arr = j.as_array();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const auto& el : arr) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        dump(el, depth + 1);
      }
      newline(depth);
      out.push_back(']');
    } else {
      const auto& obj = j.as_object();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        escape_to(out, k);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        dump(v, depth + 1);
      }
      newline(depth);
      out.push_back('}');
    }
  }
};

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw JsonError("Json parse error at offset " + std::to_string(pos) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  char next() {
    char c = peek();
    ++pos;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos;
        fail("expected ',' or '}'");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos;
        fail("expected ',' or ']'");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are rare in
            // telemetry; encode them as-is per WTF-8 for robustness).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool is_float = false;
    while (pos < text.size()) {
      char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid inside exponents, but to_chars below rejects
        // malformed sequences anyway.
        is_float = (c == '.' || c == 'e' || c == 'E') || is_float;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("expected a value");
    std::string_view tok = text.substr(start, pos - start);
    if (!is_float) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(v);
      // Fall through: integer overflow -> parse as double.
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
    return Json(d);
  }
};

}  // namespace

std::string Json::dump(int indent) const {
  Dumper d{indent, {}};
  d.dump(*this, 0);
  return d.out;
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters");
  return v;
}

}  // namespace p4s::util
