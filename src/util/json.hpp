// Minimal JSON value, writer and parser.
//
// perfSONAR's report path (control plane -> Logstash -> OpenSearch) is a
// JSON document pipeline; the archiver stores and queries JSON documents.
// We implement just enough of JSON (objects, arrays, strings, numbers,
// bools, null) with strict parsing — no comments, no trailing commas.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace p4s::util {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps keys ordered, which gives deterministic serialization —
// handy for golden tests.
using JsonObject = std::map<std::string, Json>;

/// Thrown by Json::parse on malformed input and by typed accessors on
/// type mismatch.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value. Numbers are stored as double when fractional and as
/// int64 when integral, preserving exact 64-bit counters (byte counts,
/// nanosecond timestamps) through the pipeline.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return get<std::string>("string"); }
  const JsonArray& as_array() const { return get<JsonArray>("array"); }
  JsonArray& as_array() { return get<JsonArray>("array"); }
  const JsonObject& as_object() const { return get<JsonObject>("object"); }
  JsonObject& as_object() { return get<JsonObject>("object"); }

  /// Object access; creates the key (as for std::map) on mutable access.
  Json& operator[](const std::string& key);
  /// Const object access; throws JsonError if the key is absent.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Returns the value at `key` if this is an object holding it.
  std::optional<Json> find(const std::string& key) const;

  std::size_t size() const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Strict parse; throws JsonError on any malformed input.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("Json: not a ") + what);
  }
  template <typename T>
  T& get(const char* what) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("Json: not a ") + what);
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace p4s::util
