// Unit helpers: simulated time is an unsigned 64-bit nanosecond count,
// bandwidth is bits per second, sizes are bytes. Keeping these as strong
// helper functions (not raw literals scattered around) makes experiment
// configs readable and keeps BDP math in one place.
#pragma once

#include <cstdint>

namespace p4s {

/// Simulated time in nanoseconds since the start of the simulation.
using SimTime = std::uint64_t;

namespace units {

constexpr SimTime nanoseconds(std::uint64_t v) { return v; }
constexpr SimTime microseconds(std::uint64_t v) { return v * 1'000ULL; }
constexpr SimTime milliseconds(std::uint64_t v) { return v * 1'000'000ULL; }
constexpr SimTime seconds(std::uint64_t v) { return v * 1'000'000'000ULL; }

/// Fractional seconds -> SimTime (rounds toward zero).
constexpr SimTime seconds_f(double v) {
  return static_cast<SimTime>(v * 1e9);
}

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / 1e6;
}
constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) / 1e3;
}

constexpr std::uint64_t kbps(std::uint64_t v) { return v * 1'000ULL; }
constexpr std::uint64_t mbps(std::uint64_t v) { return v * 1'000'000ULL; }
constexpr std::uint64_t gbps(std::uint64_t v) { return v * 1'000'000'000ULL; }

constexpr std::uint64_t kibibytes(std::uint64_t v) { return v * 1024ULL; }
constexpr std::uint64_t mebibytes(std::uint64_t v) {
  return v * 1024ULL * 1024ULL;
}
constexpr std::uint64_t megabytes(std::uint64_t v) { return v * 1'000'000ULL; }

/// Time to serialize `bytes` onto a link of `bits_per_second`.
constexpr SimTime transmission_time(std::uint64_t bytes,
                                    std::uint64_t bits_per_second) {
  // 8e9 ns-bits per byte-second; keep the multiply in 128 bits to avoid
  // overflow for jumbo frames on slow links.
  return static_cast<SimTime>(
      (static_cast<unsigned __int128>(bytes) * 8u * 1'000'000'000ULL) /
      bits_per_second);
}

/// Bandwidth-delay product in bytes for a path of `bits_per_second` and
/// round-trip time `rtt`.
constexpr std::uint64_t bdp_bytes(std::uint64_t bits_per_second, SimTime rtt) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(bits_per_second) * rtt) /
      (8u * 1'000'000'000ULL));
}

}  // namespace units
}  // namespace p4s
