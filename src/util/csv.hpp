// CSV writer for experiment time series (the repo's stand-in for the
// paper's Grafana dashboards). Header-only; quoting follows RFC 4180.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace p4s::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void header(std::initializer_list<std::string_view> cols) {
    write_row_impl(cols.begin(), cols.end());
  }

  /// Start a row; call cell() repeatedly then end_row().
  CsvWriter& cell(std::string_view v) {
    if (col_ > 0) out_ << ',';
    write_quoted(v);
    ++col_;
    return *this;
  }
  CsvWriter& cell(double v) {
    if (col_ > 0) out_ << ',';
    out_ << v;
    ++col_;
    return *this;
  }
  CsvWriter& cell(std::uint64_t v) {
    if (col_ > 0) out_ << ',';
    out_ << v;
    ++col_;
    return *this;
  }
  CsvWriter& cell(std::int64_t v) {
    if (col_ > 0) out_ << ',';
    out_ << v;
    ++col_;
    return *this;
  }
  void end_row() {
    out_ << '\n';
    col_ = 0;
  }

 private:
  template <typename It>
  void write_row_impl(It first, It last) {
    bool lead = true;
    for (; first != last; ++first) {
      if (!lead) out_ << ',';
      lead = false;
      write_quoted(*first);
    }
    out_ << '\n';
  }

  void write_quoted(std::string_view v) {
    const bool needs_quote =
        v.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quote) {
      out_ << v;
      return;
    }
    out_ << '"';
    for (char c : v) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  }

  std::ostream& out_;
  int col_ = 0;
};

}  // namespace p4s::util
