// Small statistics helpers used by the control plane (Jain's fairness,
// §5.3 eq. (1)), the experiment harness (series summaries) and tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace p4s::util {

/// Jain's fairness index over resource allocations x_i:
///   F = (sum x_i)^2 / (N * sum x_i^2)
/// The index is only defined while something is actually being shared:
/// for an empty set or an all-zero set (idle link, no active flows) it
/// returns nullopt rather than claiming perfect fairness — the paper's
/// Fig. 10 likewise plots fairness only while flows are active. Returns
/// a value in (0, 1] otherwise.
std::optional<double> jain_fairness(std::span<const double> allocations);

/// Streaming mean/variance/min/max (Welford). Suitable for per-flow and
/// per-series summaries without storing samples.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  double cv() const;
  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks. `q` in [0,1]. Copies and sorts; intended for end-of-run summaries.
double percentile(std::vector<double> samples, double q);

}  // namespace p4s::util
