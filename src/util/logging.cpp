#include "util/logging.hpp"

#include <cstdio>

namespace p4s::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::function<void(LogLevel, const std::string&)> g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace p4s::util
