// Minimal command-line flag parser for the runnable tools:
// --flag value / --flag=value / bare --switch. Unknown flags are
// collected as errors so tools can fail loudly instead of silently
// ignoring typos.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace p4s::util {

class CliArgs {
 public:
  /// Parse argv. `known` lists accepted value-taking flag names (without
  /// "--"); `switches` lists accepted bare switches, which never consume
  /// the following token (so `--max-speed file.pcap` leaves file.pcap
  /// positional). Anything else lands in errors().
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known,
          const std::vector<std::string>& switches = {});

  bool has(const std::string& flag) const { return values_.count(flag) > 0; }

  std::optional<std::string> get(const std::string& flag) const {
    auto it = values_.find(flag);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& flag,
                     const std::string& fallback) const {
    return get(flag).value_or(fallback);
  }

  double number_or(const std::string& flag, double fallback) const;
  std::uint64_t uint_or(const std::string& flag,
                        std::uint64_t fallback) const;

  const std::vector<std::string>& errors() const { return errors_; }
  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;  // switches map to ""
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace p4s::util
