// Exponential backoff with decorrelating jitter, used by the resilient
// report transport (retry pacing, reconnect pacing). Kept in util so any
// component that retries over the simulated clock can share the policy.
//
// The delay for attempt n is
//
//     base * factor^n, capped at max,
//
// then scaled by a jitter factor in [1 - jitter, 1]: the caller supplies
// one uniform [0,1) draw per call (from the simulation's seeded Rng), so
// the class itself stays deterministic and PRNG-agnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "util/units.hpp"

namespace p4s::util {

class ExponentialBackoff {
 public:
  struct Config {
    SimTime base = units::milliseconds(10);
    SimTime max = units::seconds(5);
    double factor = 2.0;
    /// Fraction of the delay randomized away: 0 = none, 0.5 = delays
    /// land in [d/2, d]. Keeps simultaneous retriers from synchronizing.
    double jitter = 0.5;
  };

  ExponentialBackoff() : ExponentialBackoff(Config{}) {}
  explicit ExponentialBackoff(Config config)
      : config_(config), delay_(static_cast<double>(config_.base)) {}

  /// Delay before the next attempt; `u` is a uniform draw in [0, 1).
  /// O(1): the undithered delay is carried between calls instead of being
  /// rebuilt with an O(attempts) multiply loop, and it saturates at `max`
  /// so arbitrarily long outages can neither overflow the delay nor make
  /// each retry more expensive than the last.
  SimTime next(double u) {
    double d = std::min(delay_, static_cast<double>(config_.max));
    d *= 1.0 - config_.jitter * u;
    if (delay_ < static_cast<double>(config_.max)) delay_ *= config_.factor;
    if (attempts_ < std::numeric_limits<std::uint32_t>::max()) ++attempts_;
    return std::max<SimTime>(1, static_cast<SimTime>(d));
  }

  /// Call on success: the next failure starts from `base` again.
  void reset() {
    attempts_ = 0;
    delay_ = static_cast<double>(config_.base);
  }

  std::uint32_t attempts() const { return attempts_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::uint32_t attempts_ = 0;
  /// base * factor^min(attempts_, saturation point), pre-jitter. Matches
  /// the closed form bit-for-bit because the multiply sequence is the
  /// same — existing seeded-transport traces are unchanged.
  double delay_ = 0.0;
};

}  // namespace p4s::util
