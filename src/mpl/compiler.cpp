#include "mpl/compiler.hpp"

#include <cmath>
#include <stdexcept>

namespace p4s::mpl {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw std::invalid_argument(
      "program: '" + where + "' " + what);
}

std::string join(const std::string& prefix, const std::string& key) {
  if (prefix.empty()) return key;
  return prefix + "." + key;
}

double require_number(const util::Json& v, const std::string& where) {
  if (!v.is_number()) fail(where, "must be a number");
  return v.as_double();
}

std::uint64_t require_uint(const util::Json& v, const std::string& where) {
  const double n = require_number(v, where);
  if (n < 0 || n != std::floor(n)) {
    fail(where, "must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& require_string(const util::Json& v,
                                  const std::string& where) {
  if (!v.is_string()) fail(where, "must be a string");
  return v.as_string();
}

Condition parse_condition(const util::Json& entry,
                          const std::string& where) {
  if (!entry.is_object()) fail(where, "must be an object");
  Condition cond;
  bool has_field = false;
  bool has_value = false;
  for (const auto& [k, v] : entry.as_object()) {
    const std::string path = join(where, k);
    if (k == "field") {
      try {
        cond.field = telemetry::field_from_name(require_string(v, path));
      } catch (const std::invalid_argument& e) {
        fail(path, e.what());
      }
      has_field = true;
    } else if (k == "cmp") {
      try {
        cond.cmp = cmp_from_name(require_string(v, path));
      } catch (const std::invalid_argument& e) {
        fail(path, e.what());
      }
    } else if (k == "value") {
      cond.value = require_uint(v, path);
      has_value = true;
    } else {
      fail(path, "is not a known match key");
    }
  }
  if (!has_field) fail(where, "needs 'field'");
  if (!has_value) fail(where, "needs 'value'");
  return cond;
}

Op parse_op(const util::Json& entry, const std::string& where) {
  if (!entry.is_object()) fail(where, "must be an object");
  Op op;
  bool has_kind = false;
  bool has_dst = false;
  bool has_src = false;
  bool has_weight = false;
  for (const auto& [k, v] : entry.as_object()) {
    const std::string path = join(where, k);
    if (k == "op") {
      try {
        op.kind = op_from_name(require_string(v, path));
      } catch (const std::invalid_argument& e) {
        fail(path, e.what());
      }
      has_kind = true;
    } else if (k == "dst") {
      const std::uint64_t dst = require_uint(v, path);
      if (dst >= kMaxRegisters) {
        fail(path, "must be a register index < " +
                       std::to_string(kMaxRegisters));
      }
      op.dst = static_cast<std::uint8_t>(dst);
      has_dst = true;
    } else if (k == "field") {
      if (has_src) fail(path, "conflicts with 'imm' (pick one source)");
      try {
        op.src.field = telemetry::field_from_name(require_string(v, path));
      } catch (const std::invalid_argument& e) {
        fail(path, e.what());
      }
      op.src.is_field = true;
      has_src = true;
    } else if (k == "imm") {
      if (has_src) fail(path, "conflicts with 'field' (pick one source)");
      op.src.imm = require_uint(v, path);
      op.src.is_field = false;
      has_src = true;
    } else if (k == "weight") {
      const std::uint64_t w = require_uint(v, path);
      if (w < 2 || w > 1024) fail(path, "must be an integer in 2..1024");
      op.ewma_weight = static_cast<std::uint32_t>(w);
      has_weight = true;
    } else {
      fail(path, "is not a known op key");
    }
  }
  if (!has_kind) fail(where, "needs 'op'");
  const bool needs_src =
      op.kind != OpKind::kCount;  // count has an implicit +1 source
  if (needs_src && !has_src) {
    fail(where, "needs a 'field' or 'imm' source for op '" +
                    std::string(to_string(op.kind)) + "'");
  }
  const bool needs_dst = op.kind != OpKind::kHistogramBin;
  if (needs_dst && !has_dst) fail(where, "needs 'dst'");
  if (has_weight && op.kind != OpKind::kEwma) {
    fail(join(where, "weight"), "only applies to op 'ewma'");
  }
  return op;
}

sketch::HistogramConfig parse_histogram(const util::Json& obj,
                                        const std::string& where) {
  if (!obj.is_object()) fail(where, "must be an object");
  sketch::HistogramConfig hc;
  for (const auto& [k, v] : obj.as_object()) {
    const std::string path = join(where, k);
    if (k == "scale") {
      try {
        hc.scale = sketch::histogram_scale_from_name(require_string(v, path));
      } catch (const std::invalid_argument& e) {
        fail(path, e.what());
      }
    } else if (k == "min") {
      hc.min = require_number(v, path);
    } else if (k == "max") {
      hc.max = require_number(v, path);
    } else if (k == "bins") {
      const std::uint64_t bins = require_uint(v, path);
      if (bins == 0) fail(path, "must be a positive integer");
      hc.bins = static_cast<std::size_t>(bins);
    } else {
      fail(path, "is not a known histogram key");
    }
  }
  if (!(hc.min > 0.0 && hc.min < hc.max)) {
    fail(where, "bin range must satisfy 0 < min < max");
  }
  return hc;
}

ExportSpec parse_export(const util::Json& obj, const std::string& where) {
  if (!obj.is_object()) fail(where, "must be an object");
  ExportSpec spec;
  for (const auto& [k, v] : obj.as_object()) {
    const std::string path = join(where, k);
    if (k == "metric") {
      spec.metric = require_string(v, path);
      if (spec.metric.empty()) fail(path, "must not be empty");
    } else if (k == "value_key") {
      spec.value_key = require_string(v, path);
      if (spec.value_key.empty()) fail(path, "must not be empty");
    } else if (k == "value") {
      const std::string& kind = require_string(v, path);
      if (kind == "register") {
        spec.value.kind = ExportValue::Kind::kRegister;
      } else if (kind == "rate_per_s") {
        spec.value.kind = ExportValue::Kind::kRatePerSec;
      } else if (kind == "rate_bps") {
        spec.value.kind = ExportValue::Kind::kRateBps;
      } else if (kind == "quantile") {
        spec.value.kind = ExportValue::Kind::kQuantile;
      } else {
        fail(path,
             "must be 'register', 'rate_per_s', 'rate_bps' or 'quantile'");
      }
    } else if (k == "register") {
      const std::uint64_t reg = require_uint(v, path);
      if (reg >= kMaxRegisters) {
        fail(path, "must be a register index < " +
                       std::to_string(kMaxRegisters));
      }
      spec.value.reg = static_cast<std::uint8_t>(reg);
    } else if (k == "quantile") {
      const double q = require_number(v, path);
      if (!(q > 0.0 && q < 1.0)) fail(path, "must be in (0, 1)");
      spec.value.quantile = q;
    } else if (k == "samples_per_second") {
      const double sps = require_number(v, path);
      if (!std::isfinite(sps) || sps <= 0.0) {
        fail(path, "must be a finite value > 0");
      }
      spec.samples_per_second = sps;
    } else {
      fail(path, "is not a known export key");
    }
  }
  if (spec.metric.empty()) fail(where, "needs 'metric'");
  return spec;
}

DigestSpec parse_digest(const util::Json& obj, const std::string& where) {
  if (!obj.is_object()) fail(where, "must be an object");
  DigestSpec spec;
  for (const auto& [k, v] : obj.as_object()) {
    const std::string path = join(where, k);
    if (k == "every") {
      const std::uint64_t every = require_uint(v, path);
      if (every == 0) fail(path, "must be a positive integer");
      spec.every = static_cast<std::uint32_t>(every);
    } else if (k == "register") {
      const std::uint64_t reg = require_uint(v, path);
      if (reg >= kMaxRegisters) {
        fail(path, "must be a register index < " +
                       std::to_string(kMaxRegisters));
      }
      spec.reg = static_cast<std::uint8_t>(reg);
    } else {
      fail(path, "is not a known digest key");
    }
  }
  if (spec.every == 0) fail(where, "needs 'every'");
  return spec;
}

}  // namespace

const char* to_string(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq: return "eq";
    case Cmp::kNe: return "ne";
    case Cmp::kLt: return "lt";
    case Cmp::kLe: return "le";
    case Cmp::kGt: return "gt";
    case Cmp::kGe: return "ge";
  }
  return "?";
}

Cmp cmp_from_name(const std::string& name) {
  for (const Cmp cmp : {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                        Cmp::kGe}) {
    if (name == to_string(cmp)) return cmp;
  }
  throw std::invalid_argument("unknown cmp: " + name);
}

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kCount: return "count";
    case OpKind::kAdd: return "add";
    case OpKind::kMin: return "min";
    case OpKind::kMax: return "max";
    case OpKind::kSet: return "set";
    case OpKind::kEwma: return "ewma";
    case OpKind::kHistogramBin: return "histogram_bin";
  }
  return "?";
}

OpKind op_from_name(const std::string& name) {
  for (const OpKind kind :
       {OpKind::kCount, OpKind::kAdd, OpKind::kMin, OpKind::kMax,
        OpKind::kSet, OpKind::kEwma, OpKind::kHistogramBin}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown op: " + name);
}

const char* to_string(Scope scope) {
  return scope == Scope::kFlow ? "flow" : "switch";
}

Scope scope_from_name(const std::string& name) {
  if (name == "flow") return Scope::kFlow;
  if (name == "switch") return Scope::kSwitch;
  throw std::invalid_argument("unknown scope: " + name);
}

Program compile_program(const util::Json& doc, const std::string& path) {
  if (!doc.is_object()) {
    fail(path.empty() ? "program" : path, "must be an object");
  }
  Program program;
  bool has_histogram = false;
  for (const auto& [k, v] : doc.as_object()) {
    const std::string where = join(path, k);
    if (k == "name") {
      program.name = require_string(v, where);
      if (program.name.empty()) fail(where, "must not be empty");
    } else if (k == "scope") {
      try {
        program.scope = scope_from_name(require_string(v, where));
      } catch (const std::invalid_argument& e) {
        fail(where, e.what());
      }
    } else if (k == "match") {
      if (!v.is_array()) fail(where, "must be an array");
      const auto& entries = v.as_array();
      if (entries.size() > kMaxMatch) {
        fail(where,
             "has too many conditions (max " + std::to_string(kMaxMatch) +
                 ")");
      }
      for (std::size_t i = 0; i < entries.size(); ++i) {
        program.match.push_back(parse_condition(
            entries[i], where + "[" + std::to_string(i) + "]"));
      }
    } else if (k == "ops") {
      if (!v.is_array()) fail(where, "must be an array");
      const auto& entries = v.as_array();
      if (entries.size() > kMaxOps) {
        fail(where,
             "has too many ops (max " + std::to_string(kMaxOps) + ")");
      }
      for (std::size_t i = 0; i < entries.size(); ++i) {
        program.ops.push_back(
            parse_op(entries[i], where + "[" + std::to_string(i) + "]"));
      }
    } else if (k == "histogram") {
      program.histogram = parse_histogram(v, where);
      has_histogram = true;
    } else if (k == "export") {
      program.export_spec = parse_export(v, where);
    } else if (k == "digest") {
      program.digest = parse_digest(v, where);
    } else {
      fail(where, "is not a known program key");
    }
  }

  const std::string where = path.empty() ? "program" : path;
  if (program.name.empty()) fail(where, "needs 'name'");
  if (program.ops.empty()) fail(where, "needs at least one op");

  // Register-file sizing: highest dst (and export source) + 1.
  std::uint8_t registers = 0;
  bool uses_histogram = false;
  for (const Op& op : program.ops) {
    if (op.kind == OpKind::kHistogramBin) {
      uses_histogram = true;
      continue;
    }
    registers = std::max<std::uint8_t>(
        registers, static_cast<std::uint8_t>(op.dst + 1));
  }
  program.registers = registers;

  if (uses_histogram && !has_histogram) {
    fail(where, "uses op 'histogram_bin' but has no 'histogram' section");
  }
  if (!uses_histogram && has_histogram) {
    fail(join(path, "histogram"), "is present but no op is 'histogram_bin'");
  }
  if (uses_histogram && program.scope != Scope::kSwitch) {
    fail(where, "op 'histogram_bin' requires scope 'switch' (the histogram "
                "summarizes the link, not one flow slot)");
  }

  if (program.export_spec.has_value()) {
    const ExportSpec& spec = *program.export_spec;
    if (spec.value.kind == ExportValue::Kind::kQuantile) {
      if (!uses_histogram) {
        fail(join(path, "export"),
             "exports a quantile but the program has no histogram");
      }
    } else if (spec.value.reg >= program.registers) {
      fail(join(path, "export.register"),
           "names register " + std::to_string(spec.value.reg) +
               " but the program only writes registers 0.." +
               std::to_string(program.registers - 1));
    }
  }
  if (program.digest.every > 0 && program.digest.reg >= program.registers) {
    fail(join(path, "digest.register"),
         "names register " + std::to_string(program.digest.reg) +
             " but the program only writes registers 0.." +
             (program.registers > 0 ? std::to_string(program.registers - 1)
                                    : std::string("none")));
  }
  return program;
}

Program compile_program_text(const std::string& text,
                             const std::string& path) {
  return compile_program(util::Json::parse(text), path);
}

util::Json program_to_json(const Program& program) {
  util::Json doc = util::Json::object();
  doc["name"] = program.name;
  doc["scope"] = to_string(program.scope);
  if (!program.match.empty()) {
    util::Json match = util::Json::array();
    for (const Condition& cond : program.match) {
      util::Json c = util::Json::object();
      c["field"] = telemetry::field_name(cond.field);
      c["cmp"] = to_string(cond.cmp);
      c["value"] = static_cast<std::int64_t>(cond.value);
      match.as_array().push_back(std::move(c));
    }
    doc["match"] = std::move(match);
  }
  util::Json ops = util::Json::array();
  for (const Op& op : program.ops) {
    util::Json o = util::Json::object();
    o["op"] = to_string(op.kind);
    if (op.kind != OpKind::kHistogramBin) {
      o["dst"] = static_cast<std::int64_t>(op.dst);
    }
    if (op.kind != OpKind::kCount) {
      if (op.src.is_field) {
        o["field"] = telemetry::field_name(op.src.field);
      } else {
        o["imm"] = static_cast<std::int64_t>(op.src.imm);
      }
    }
    if (op.kind == OpKind::kEwma) {
      o["weight"] = static_cast<std::int64_t>(op.ewma_weight);
    }
    ops.as_array().push_back(std::move(o));
  }
  doc["ops"] = std::move(ops);
  if (program.histogram.has_value()) {
    util::Json h = util::Json::object();
    h["scale"] = sketch::to_string(program.histogram->scale);
    h["min"] = program.histogram->min;
    h["max"] = program.histogram->max;
    h["bins"] = static_cast<std::int64_t>(program.histogram->bins);
    doc["histogram"] = std::move(h);
  }
  if (program.export_spec.has_value()) {
    const ExportSpec& spec = *program.export_spec;
    util::Json e = util::Json::object();
    e["metric"] = spec.metric;
    e["value_key"] = spec.value_key;
    switch (spec.value.kind) {
      case ExportValue::Kind::kRegister: e["value"] = "register"; break;
      case ExportValue::Kind::kRatePerSec: e["value"] = "rate_per_s"; break;
      case ExportValue::Kind::kRateBps: e["value"] = "rate_bps"; break;
      case ExportValue::Kind::kQuantile: e["value"] = "quantile"; break;
    }
    if (spec.value.kind == ExportValue::Kind::kQuantile) {
      e["quantile"] = spec.value.quantile;
    } else {
      e["register"] = static_cast<std::int64_t>(spec.value.reg);
    }
    e["samples_per_second"] = spec.samples_per_second;
    doc["export"] = std::move(e);
  }
  if (program.digest.every > 0) {
    util::Json d = util::Json::object();
    d["every"] = static_cast<std::int64_t>(program.digest.every);
    d["register"] = static_cast<std::int64_t>(program.digest.reg);
    doc["digest"] = std::move(d);
  }
  return doc;
}

}  // namespace p4s::mpl
