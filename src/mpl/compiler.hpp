// MPL JSON front end: parse + validate a measurement program document
// into the IR, with full-JSON-path diagnostics.
//
// Document shape (see examples/programs/*.mpl.json):
//
//   {
//     "name": "byte_counter",
//     "scope": "flow",                        // "flow" | "switch"
//     "match": [                              // optional, ANDed
//       {"field": "is_tcp", "cmp": "eq", "value": 1}
//     ],
//     "ops": [                                // 1..32
//       {"op": "add", "dst": 0, "field": "ipv4_total_len"},
//       {"op": "count", "dst": 1},
//       {"op": "ewma", "dst": 2, "field": "payload_bytes", "weight": 8},
//       {"op": "histogram_bin", "field": "queue_delay_ns"}
//     ],
//     "histogram": {"scale": "log", "min": 1e3, "max": 1e9, "bins": 64},
//     "export": {                             // optional
//       "metric": "vm_throughput",            // Report_v1 metric name
//       "value_key": "throughput_bps",
//       "value": "rate_bps",                  // "register" | "rate_per_s"
//                                             // | "rate_bps" | "quantile"
//       "register": 0,                        // value source
//       "quantile": 0.99,                     // "quantile" only
//       "samples_per_second": 1
//     },
//     "digest": {"every": 1000, "register": 0} // optional
//   }
//
// Every validation error is a std::invalid_argument whose message names
// the offending key by its FULL path under the caller-supplied prefix —
// "switches[1].programs[0].ops[2].field" when installed from a config
// document, "byte_counter.mpl.json: ops[2].field" from a file — so a
// typo in a nested program is as diagnosable as a top-level one.
#pragma once

#include <string>

#include "mpl/ir.hpp"
#include "util/json.hpp"

namespace p4s::mpl {

/// Compile a program document. `path` prefixes every diagnostic (pass
/// the JSON path or file name of the document; "" for a bare program).
/// Throws std::invalid_argument on any validation failure.
Program compile_program(const util::Json& doc, const std::string& path = "");

/// Convenience: parse text, then compile_program. Throws util::JsonError
/// on malformed JSON and std::invalid_argument on validation failures.
Program compile_program_text(const std::string& text,
                             const std::string& path = "");

/// Canonical serialization of a compiled program (round-trips through
/// compile_program; used by diagnostics and tests).
util::Json program_to_json(const Program& program);

}  // namespace p4s::mpl
