// ProgramVm — the switch-side interpreter hosting installed measurement
// programs behind the engine registry.
//
// One VM instance per monitored switch, enrolled once via
// DataPlaneProgram::register_packet_engine(). It receives every parsed
// copy (on_packet) and every tracked data packet (on_tracked_data)
// through the shared FieldView accessor table, evaluates each installed
// program's match predicate, and runs its register ops:
//
//   * flow-scope programs own register WINDOWS — one kFlowSlots-wide
//     RegisterArray row per program register, indexed by the tracked
//     flow's slot. Rows come out of a fixed budget (Config::row_budget)
//     so a runaway install cannot grow switch memory; clear_slot /
//     slot_cleared integrate the windows with the fabric's slot-release
//     invariant exactly like the hand-written engines.
//   * switch-scope programs get one cell per register and run on every
//     parsed copy (both TAP points), like the histogram engines.
//
// bind(cp) plugs the VM into a ControlPlane: each program's export spec
// instantiates a MetricExtractor by name at run time (per-program timer,
// configurable through the existing name-based set_samples_per_second /
// set_alert APIs), and program digests drain through a registered digest
// source into "program_digest" reports. install / update / remove keep
// the extractor table in sync.
//
// Determinism: the VM holds the per-program export state (prev value,
// prev extraction time, last computed metric) itself, NOT in the control
// plane's FlowState, and wipes it in clear_slot — so a recycled slot can
// never leak another flow's rate baseline, and a serial and a sharded
// run observe identical values (the fabric's driver_sync barrier runs
// before every extractor tick, VM extractors included).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mpl/ir.hpp"
#include "p4/register.hpp"
#include "sketch/histogram.hpp"
#include "telemetry/packet_engine.hpp"
#include "telemetry/types.hpp"

namespace p4s::cp {
class ControlPlane;
}

namespace p4s::mpl {

/// One emitted program digest (digest.every matched packets).
struct ProgramDigest {
  std::string program;
  std::uint32_t flow_id = 0;  // 0 for switch-scope programs
  std::uint16_t slot = 0;     // tracked slot (flow scope) or 0
  std::uint64_t value = 0;    // watched register at emit time
  SimTime at = 0;
};

class ProgramVm : public telemetry::PacketEngine {
 public:
  struct Config {
    /// Register-row budget shared by all installed flow-scope programs;
    /// each row is a kFlowSlots-wide uint64 window. 64 rows ~ 1 MiB of
    /// switch SRAM — in line with one more sketch, not a new pipeline.
    std::size_t row_budget = 64;
  };

  ProgramVm();
  explicit ProgramVm(Config config);

  ProgramVm(const ProgramVm&) = delete;
  ProgramVm& operator=(const ProgramVm&) = delete;

  /// Attach the VM to a control plane: registers export extractors for
  /// every already-installed program and a digest source for program
  /// digests. Call at most once, before or after installs.
  void bind(cp::ControlPlane& cp);

  /// Install a compiled program. A program with the same name is
  /// replaced atomically (its extractor is re-registered so a changed
  /// export spec takes effect). Throws std::invalid_argument when the
  /// register-row budget would be exceeded or the export metric name
  /// collides with a different extractor.
  void install(Program program);

  /// Remove by name; unregisters the export extractor. Returns false if
  /// no such program is installed.
  bool remove(std::string_view name);

  std::size_t program_count() const { return programs_.size(); }
  const Program* find(std::string_view name) const;
  std::vector<std::string> program_names() const;

  std::size_t rows_in_use() const { return rows_in_use_; }
  std::size_t row_budget() const { return config_.row_budget; }

  // ---- Observability (tests / tooling) --------------------------------
  /// Register value: flow scope reads the window cell at `slot`,
  /// switch scope ignores `slot`. Throws on unknown program/register.
  std::uint64_t reg(std::string_view program, std::uint8_t r,
                    std::uint16_t slot = 0) const;
  /// Program histogram, or nullptr when the program has none.
  const sketch::Histogram* histogram(std::string_view program) const;
  /// Packets that matched the program's predicate.
  std::uint64_t matched(std::string_view program) const;

  /// Drain pending program digests (the control plane's poll loop does
  /// this through the registered digest source).
  std::vector<ProgramDigest> drain_digests();

  // ---- telemetry::PacketEngine ----------------------------------------
  std::string_view name() const override { return "program_vm"; }
  void on_packet(const telemetry::FieldView& view) override;
  void on_tracked_data(std::uint16_t slot,
                       const telemetry::FieldView& view) override;
  void clear_slot(std::uint16_t slot) override;
  bool slot_cleared(std::uint16_t slot) const override;
  std::size_t pending_digests() const override { return digests_.size(); }

 private:
  /// Per-slot export bookkeeping for rate exports; mirrors the builtin
  /// throughput reader's prev/prev_at/last triple exactly so a program
  /// port of a builtin reproduces its values bit-for-bit.
  struct ExportState {
    std::uint64_t prev = 0;
    SimTime prev_at = 0;
    double last = 0.0;
  };

  struct Installed {
    Program program;
    /// program.registers rows: kFlowSlots cells (flow) or 1 (switch).
    std::vector<p4::RegisterArray<std::uint64_t>> rows;
    std::unique_ptr<sketch::Histogram> hist;
    std::uint64_t matched = 0;
    std::uint32_t digest_countdown = 0;
    /// kFlowSlots entries (flow) or 1 (switch); wiped by clear_slot.
    std::vector<ExportState> export_state;
  };

  static bool matches(const Program& program,
                      const telemetry::FieldView& view);
  void run_ops(Installed& p, std::size_t cell,
               const telemetry::FieldView& view, SimTime now);
  void register_export(Installed& p);
  /// The extractor's read callback: replicate the builtin rate
  /// arithmetic over the program's register window.
  double read_export(Installed& p, std::size_t cell, SimTime detected_at,
                     SimTime now);
  std::size_t index_of(std::string_view name) const;  // npos if absent

  Config config_;
  cp::ControlPlane* cp_ = nullptr;
  /// unique_ptr so Installed* captured by extractor closures stays
  /// stable across installs and removals.
  std::vector<std::unique_ptr<Installed>> programs_;
  std::size_t rows_in_use_ = 0;
  std::deque<ProgramDigest> digests_;
  std::uint64_t digests_dropped_ = 0;
  static constexpr std::size_t kDigestCapacity = 4096;
};

}  // namespace p4s::mpl
