#include "mpl/vm.hpp"

#include <stdexcept>
#include <utility>

#include "controlplane/control_plane.hpp"

namespace p4s::mpl {

ProgramVm::ProgramVm() : ProgramVm(Config{}) {}

ProgramVm::ProgramVm(Config config) : config_(config) {}

std::size_t ProgramVm::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    if (programs_[i]->program.name == name) return i;
  }
  return programs_.size();
}

const Program* ProgramVm::find(std::string_view name) const {
  const std::size_t i = index_of(name);
  return i < programs_.size() ? &programs_[i]->program : nullptr;
}

std::vector<std::string> ProgramVm::program_names() const {
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto& p : programs_) names.push_back(p->program.name);
  return names;
}

void ProgramVm::bind(cp::ControlPlane& cp) {
  if (cp_ != nullptr) {
    throw std::logic_error("ProgramVm: already bound to a control plane");
  }
  cp_ = &cp;
  cp.register_digest_source([this](SimTime) {
    std::vector<util::Json> docs;
    for (const ProgramDigest& d : drain_digests()) {
      util::Json j = util::Json::object();
      j["report"] = "program_digest";
      j["program"] = d.program;
      j["ts_ns"] = static_cast<std::int64_t>(d.at);
      j["flow_id"] = static_cast<std::int64_t>(d.flow_id);
      j["slot"] = static_cast<std::int64_t>(d.slot);
      j["value"] = static_cast<std::int64_t>(d.value);
      docs.push_back(std::move(j));
    }
    return docs;
  });
  for (auto& p : programs_) register_export(*p);
}

void ProgramVm::install(Program program) {
  const std::size_t existing = index_of(program.name);
  const bool replacing = existing < programs_.size();
  const std::size_t freed_rows =
      replacing && programs_[existing]->program.scope == Scope::kFlow
          ? programs_[existing]->program.registers
          : 0;
  const std::size_t wanted_rows =
      program.scope == Scope::kFlow ? program.registers : 0;
  if (rows_in_use_ - freed_rows + wanted_rows > config_.row_budget) {
    throw std::invalid_argument(
        "program '" + program.name + "': register-row budget exceeded (" +
        std::to_string(rows_in_use_ - freed_rows) + " in use + " +
        std::to_string(wanted_rows) + " wanted > " +
        std::to_string(config_.row_budget) + ")");
  }
  // Metric-name collision check BEFORE any state changes so a failed
  // install leaves both the VM and the extractor table untouched.
  if (cp_ != nullptr && program.export_spec.has_value()) {
    const std::string& metric = program.export_spec->metric;
    const bool own_metric =
        replacing && programs_[existing]->program.export_spec.has_value() &&
        programs_[existing]->program.export_spec->metric == metric;
    if (!own_metric && cp_->has_extractor(metric)) {
      throw std::invalid_argument("program '" + program.name +
                                  "': export metric '" + metric +
                                  "' collides with an existing extractor");
    }
  }

  auto inst = std::make_unique<Installed>();
  inst->program = std::move(program);
  const std::size_t cells =
      inst->program.scope == Scope::kFlow ? telemetry::kFlowSlots : 1;
  inst->rows.reserve(inst->program.registers);
  for (std::size_t r = 0; r < inst->program.registers; ++r) {
    inst->rows.emplace_back(cells);
  }
  if (inst->program.histogram.has_value()) {
    inst->hist = std::make_unique<sketch::Histogram>(*inst->program.histogram);
  }
  inst->export_state.resize(cells);

  if (replacing) {
    Installed& old = *programs_[existing];
    if (cp_ != nullptr && old.program.export_spec.has_value()) {
      cp_->unregister_extractor(old.program.export_spec->metric);
    }
    rows_in_use_ -= freed_rows;
    programs_[existing] = std::move(inst);
    rows_in_use_ += wanted_rows;
    register_export(*programs_[existing]);
  } else {
    programs_.push_back(std::move(inst));
    rows_in_use_ += wanted_rows;
    register_export(*programs_.back());
  }
}

bool ProgramVm::remove(std::string_view name) {
  const std::size_t i = index_of(name);
  if (i >= programs_.size()) return false;
  Installed& p = *programs_[i];
  if (cp_ != nullptr && p.program.export_spec.has_value()) {
    cp_->unregister_extractor(p.program.export_spec->metric);
  }
  if (p.program.scope == Scope::kFlow) rows_in_use_ -= p.program.registers;
  programs_.erase(programs_.begin() + static_cast<std::ptrdiff_t>(i));
  return true;
}

void ProgramVm::register_export(Installed& p) {
  if (cp_ == nullptr || !p.program.export_spec.has_value()) return;
  const ExportSpec& spec = *p.program.export_spec;
  cp::ControlPlane::MetricExtractor ex;
  ex.name = spec.metric;
  ex.value_key = spec.value_key;
  // The closure captures the Installed by pointer — stable across
  // installs (unique_ptr storage) and released by unregister_extractor
  // before the Installed dies.
  Installed* ptr = &p;
  if (p.program.scope == Scope::kFlow) {
    ex.read = [this, ptr](std::uint16_t slot,
                          cp::ControlPlane::FlowState& state, SimTime now) {
      return read_export(*ptr, slot, state.detected_at, now);
    };
  } else {
    ex.read_switch = [this, ptr](SimTime now) {
      return read_export(*ptr, 0, 0, now);
    };
  }
  cp::MetricConfig mc;
  mc.interval = units::seconds_f(1.0 / spec.samples_per_second);
  cp_->register_extractor(std::move(ex), mc);
}

double ProgramVm::read_export(Installed& p, std::size_t cell,
                              SimTime detected_at, SimTime now) {
  const ExportValue& value = p.program.export_spec->value;
  ExportState& es = p.export_state[cell];
  switch (value.kind) {
    case ExportValue::Kind::kRegister:
      return static_cast<double>(p.rows[value.reg].cp_read(cell));
    case ExportValue::Kind::kQuantile:
      return p.hist->quantile(value.quantile);
    case ExportValue::Kind::kRatePerSec:
    case ExportValue::Kind::kRateBps: {
      // The builtin throughput reader's arithmetic, verbatim: first tick
      // rates from the flow's detection time, dt == 0 keeps the last
      // value. Bit-for-bit equal inputs give bit-for-bit equal doubles —
      // that is the byte-identity contract of the shipped byte-counter
      // port (tests/program_vm_identity_test).
      const std::uint64_t v = p.rows[value.reg].cp_read(cell);
      const SimTime prev_at = es.prev_at ? es.prev_at : detected_at;
      const double dt = units::to_seconds(now - prev_at);
      if (dt > 0.0) {
        const double scale =
            value.kind == ExportValue::Kind::kRateBps ? 8.0 : 1.0;
        es.last = static_cast<double>(v - es.prev) * scale / dt;
      }
      es.prev = v;
      es.prev_at = now;
      return es.last;
    }
  }
  return 0.0;
}

bool ProgramVm::matches(const Program& program,
                        const telemetry::FieldView& view) {
  for (const Condition& cond : program.match) {
    const std::uint64_t v = view.get(cond.field);
    bool ok = false;
    switch (cond.cmp) {
      case Cmp::kEq: ok = v == cond.value; break;
      case Cmp::kNe: ok = v != cond.value; break;
      case Cmp::kLt: ok = v < cond.value; break;
      case Cmp::kLe: ok = v <= cond.value; break;
      case Cmp::kGt: ok = v > cond.value; break;
      case Cmp::kGe: ok = v >= cond.value; break;
    }
    if (!ok) return false;
  }
  return true;
}

void ProgramVm::run_ops(Installed& p, std::size_t cell,
                        const telemetry::FieldView& view, SimTime now) {
  ++p.matched;
  for (const Op& op : p.program.ops) {
    const std::uint64_t src =
        op.kind == OpKind::kCount
            ? 1
            : (op.src.is_field ? view.get(op.src.field) : op.src.imm);
    switch (op.kind) {
      case OpKind::kCount:
        p.rows[op.dst].execute(cell, [](std::uint64_t& v) { return ++v; });
        break;
      case OpKind::kAdd:
        p.rows[op.dst].execute(cell,
                               [src](std::uint64_t& v) { return v += src; });
        break;
      case OpKind::kMin:
        p.rows[op.dst].execute(cell, [src](std::uint64_t& v) {
          if (v == 0 || src < v) v = src;
          return v;
        });
        break;
      case OpKind::kMax:
        p.rows[op.dst].execute(cell, [src](std::uint64_t& v) {
          if (src > v) v = src;
          return v;
        });
        break;
      case OpKind::kSet:
        p.rows[op.dst].write(cell, src);
        break;
      case OpKind::kEwma:
        p.rows[op.dst].execute(cell, [src, w = op.ewma_weight](
                                         std::uint64_t& v) {
          v = v == 0 ? src : ((w - 1) * v + src) / w;
          return v;
        });
        break;
      case OpKind::kHistogramBin:
        p.hist->add(static_cast<double>(src));
        break;
    }
  }
  if (p.program.digest.every > 0 &&
      ++p.digest_countdown >= p.program.digest.every) {
    p.digest_countdown = 0;
    if (digests_.size() >= kDigestCapacity) {
      ++digests_dropped_;
      return;
    }
    ProgramDigest d;
    d.program = p.program.name;
    if (p.program.scope == Scope::kFlow) {
      d.flow_id = view.flow_id();
      d.slot = static_cast<std::uint16_t>(cell);
    }
    d.value = p.rows[p.program.digest.reg].read(cell);
    d.at = now;
    digests_.push_back(std::move(d));
  }
}

void ProgramVm::on_packet(const telemetry::FieldView& view) {
  for (auto& p : programs_) {
    if (p->program.scope != Scope::kSwitch) continue;
    if (!matches(p->program, view)) continue;
    run_ops(*p, 0, view, view.ingress_ts());
  }
}

void ProgramVm::on_tracked_data(std::uint16_t slot,
                                const telemetry::FieldView& view) {
  for (auto& p : programs_) {
    if (p->program.scope != Scope::kFlow) continue;
    if (!matches(p->program, view)) continue;
    run_ops(*p, slot, view, view.ingress_ts());
  }
}

void ProgramVm::clear_slot(std::uint16_t slot) {
  for (auto& p : programs_) {
    if (p->program.scope != Scope::kFlow) continue;
    for (auto& row : p->rows) row.cp_write(slot, 0);
    p->export_state[slot] = ExportState{};
  }
}

bool ProgramVm::slot_cleared(std::uint16_t slot) const {
  for (const auto& p : programs_) {
    if (p->program.scope != Scope::kFlow) continue;
    for (const auto& row : p->rows) {
      if (row.cp_read(slot) != 0) return false;
    }
    const ExportState& es = p->export_state[slot];
    if (es.prev != 0 || es.prev_at != 0 || es.last != 0.0) return false;
  }
  return true;
}

std::vector<ProgramDigest> ProgramVm::drain_digests() {
  std::vector<ProgramDigest> out(
      std::make_move_iterator(digests_.begin()),
      std::make_move_iterator(digests_.end()));
  digests_.clear();
  return out;
}

std::uint64_t ProgramVm::reg(std::string_view program, std::uint8_t r,
                             std::uint16_t slot) const {
  const std::size_t i = index_of(program);
  if (i >= programs_.size()) {
    throw std::invalid_argument("unknown program: " + std::string(program));
  }
  const Installed& p = *programs_[i];
  if (r >= p.rows.size()) {
    throw std::invalid_argument("program '" + std::string(program) +
                                "': no register " + std::to_string(r));
  }
  const std::size_t cell = p.program.scope == Scope::kFlow ? slot : 0;
  return p.rows[r].cp_read(cell);
}

const sketch::Histogram* ProgramVm::histogram(
    std::string_view program) const {
  const std::size_t i = index_of(program);
  if (i >= programs_.size()) {
    throw std::invalid_argument("unknown program: " + std::string(program));
  }
  return programs_[i]->hist.get();
}

std::uint64_t ProgramVm::matched(std::string_view program) const {
  const std::size_t i = index_of(program);
  if (i >= programs_.size()) {
    throw std::invalid_argument("unknown program: " + std::string(program));
  }
  return programs_[i]->matched;
}

}  // namespace p4s::mpl
