// MPL — the measurement program library's intermediate representation.
//
// A measurement program is the paper's "new metric without a recompile"
// unit (ROADMAP: runtime-programmable measurements; *Millions of Little
// Minions* / *Measurements As First-class Artifacts* in PAPERS.md): a
// match predicate over the shared FieldView accessor table, a short
// straight-line sequence of register ops executed per matched packet,
// and an export spec naming the Report_v1 metric the control plane
// should publish from the program's registers.
//
//   match:  conjunction of (field cmp constant) conditions — the
//           ternary-match idiom of a P4 table, restricted to ranges.
//   ops:    add / min / max / count / set / ewma / histogram_bin over a
//           small per-program register file. Flow-scope programs get a
//           kFlowSlots-wide window per register (indexed by the tracked
//           flow's slot, cleared on slot release); switch-scope programs
//           get one cell per register. histogram_bin feeds a
//           p4s_sketch fixed-bin histogram (switch-wide, like the
//           histogram engines).
//   export: instantiates a MetricExtractor by name at run time —
//           register value, rate/s, rate in bits/s (the byte-counter
//           semantics), or a histogram quantile — at a per-program
//           sample rate.
//
// The IR is deliberately tiny and fully validated at install time; the
// per-packet interpreter (vm.hpp) does no allocation, no name lookup
// and no branching beyond the program text itself, which is what keeps
// interpreted overhead within the bench/program_vm budget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sketch/histogram.hpp"
#include "telemetry/field_view.hpp"

namespace p4s::mpl {

/// Comparison operators of a match condition.
enum class Cmp : std::uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

const char* to_string(Cmp cmp);
/// Inverse of to_string ("eq", "ne", "lt", "le", "gt", "ge"); throws
/// std::invalid_argument on unknown names.
Cmp cmp_from_name(const std::string& name);

/// One conjunct of the match predicate: field cmp value.
struct Condition {
  telemetry::FieldId field = telemetry::FieldId::kFlowId;
  Cmp cmp = Cmp::kEq;
  std::uint64_t value = 0;
};

/// Register-op kinds. All operate on uint64 registers; min behaves as
/// "first sample wins the empty register" so a cleared slot (all zeros)
/// never reports a spurious 0 minimum.
enum class OpKind : std::uint8_t {
  kCount = 0,     // dst += 1 (src ignored)
  kAdd,           // dst += src
  kMin,           // dst = min(dst, src); empty (0 with no sample) adopts src
  kMax,           // dst = max(dst, src)
  kSet,           // dst = src (last value wins)
  kEwma,          // dst = ((weight-1)*dst + src) / weight, integer
  kHistogramBin,  // program histogram. add(src); no register written
};

const char* to_string(OpKind kind);
/// Inverse of to_string ("count", "add", "min", "max", "set", "ewma",
/// "histogram_bin"); throws std::invalid_argument on unknown names.
OpKind op_from_name(const std::string& name);

/// Op source: a FieldView field or an immediate constant.
struct Operand {
  bool is_field = true;
  telemetry::FieldId field = telemetry::FieldId::kIpv4TotalLen;
  std::uint64_t imm = 0;
};

struct Op {
  OpKind kind = OpKind::kCount;
  /// Destination register (ignored by histogram_bin).
  std::uint8_t dst = 0;
  Operand src;
  /// ewma smoothing denominator (the IAT monitor's value is 8:
  /// (7*ewma + x) / 8). Must be >= 2.
  std::uint32_t ewma_weight = 8;
};

/// Where the program runs.
enum class Scope : std::uint8_t {
  kFlow = 0,  // measurement path: tracked data packets, slot-indexed
  kSwitch,    // every parsed copy on the link, single register cells
};

const char* to_string(Scope scope);
Scope scope_from_name(const std::string& name);

/// How the export spec turns a register into the report value.
struct ExportValue {
  enum class Kind : std::uint8_t {
    kRegister = 0,  // raw register value
    kRatePerSec,    // (value - prev) / dt since the last extraction
    kRateBps,       // (value - prev) * 8 / dt — the throughput semantics
    kQuantile,      // program histogram quantile (switch scope only)
  };
  Kind kind = Kind::kRegister;
  std::uint8_t reg = 0;
  double quantile = 0.99;  // kQuantile only
};

/// The Report_v1 side: metric name (the extractor's identity), the JSON
/// value key, the value derivation and the extraction rate.
struct ExportSpec {
  std::string metric;
  std::string value_key = "value";
  ExportValue value;
  double samples_per_second = 1.0;
};

/// Optional digest spec: every `every`-th matched packet emits a
/// ProgramDigest (drained by the control plane's poll loop into
/// "program_digest" reports) carrying the watched register's value.
struct DigestSpec {
  std::uint32_t every = 0;  // 0 = disabled
  std::uint8_t reg = 0;
};

struct Program {
  std::string name;
  Scope scope = Scope::kFlow;
  std::vector<Condition> match;  // conjunction; empty = match everything
  std::vector<Op> ops;
  /// Register-file size. Flow scope: each register is a kFlowSlots-wide
  /// window row; switch scope: one cell each.
  std::uint8_t registers = 0;
  /// Present iff any op is histogram_bin (bin edges in the op source's
  /// units, nanoseconds for time fields).
  std::optional<sketch::HistogramConfig> histogram;
  std::optional<ExportSpec> export_spec;
  DigestSpec digest;
};

/// Hard ceiling keeping one program's interpreter cost bounded.
inline constexpr std::size_t kMaxOps = 32;
inline constexpr std::size_t kMaxMatch = 16;
inline constexpr std::size_t kMaxRegisters = 16;

}  // namespace p4s::mpl
