// QUIC-like receiver endpoint (the server side of a one-directional
// bulk transfer over the encrypted transport).
//
// Answers the client's Initial with its own Initial (completing the
// 1-RTT handshake the simulator models), reassembles STREAM frames with
// the same interval-map bookkeeping the TCP receiver uses, and returns
// ACK frames *inside* the encrypted payload of short-header packets —
// a passive observer sees only header bytes and an opaque length, which
// is exactly why the spin bit exists (RFC 9000 §17.4): the receiver
// reflects the spin value of the largest-numbered packet seen from the
// client, giving the path one observable edge per RTT per direction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace p4s::quic {

class QuicReceiver {
 public:
  struct Config {
    /// Connection ID this endpoint answers to (the DCID on every
    /// client-to-server packet). Assigned by QuicFlow.
    std::uint64_t my_cid = 0;
    /// DCID we put on packets back to the client.
    std::uint64_t peer_cid = 0;
    /// Opaque payload bytes of an ACK-only packet (ciphertext of the
    /// ACK frame + AEAD tag).
    std::uint32_t ack_payload_bytes = 24;
  };

  struct Stats {
    std::uint64_t goodput_bytes = 0;  // stream bytes delivered in order
    std::uint64_t received_packets = 0;
    std::uint64_t duplicate_packets = 0;   // packet number seen before
    std::uint64_t out_of_order_packets = 0;
    std::uint64_t wrong_dcid = 0;          // DCID != my_cid: dropped
    std::uint64_t acks_sent = 0;
    SimTime first_data_time = 0;
    SimTime last_data_time = 0;
    bool fin_received = false;
  };

  QuicReceiver(sim::Simulation& sim, net::Host& host, std::uint16_t port,
               Config config);
  ~QuicReceiver();

  QuicReceiver(const QuicReceiver&) = delete;
  QuicReceiver& operator=(const QuicReceiver&) = delete;

  void on_packet(const net::Packet& pkt);

  void set_on_fin(std::function<void()> cb) { on_fin_ = std::move(cb); }

  const Stats& stats() const { return stats_; }
  bool established() const { return established_; }

 private:
  void handle_initial(const net::Packet& pkt);
  void handle_short(const net::Packet& pkt);
  /// Record `pn` in the received-packet-number interval set; returns
  /// false if it was already present (a duplicate).
  bool record_pn(std::uint32_t pn);
  void fill_ack(net::QuicFrames& frames) const;
  void send_ack();

  sim::Simulation& sim_;
  net::Host& host_;
  std::uint16_t port_;
  Config config_;
  Stats stats_;

  bool established_ = false;
  net::Ipv4Address peer_ip_ = 0;
  std::uint16_t peer_port_ = 0;
  std::uint32_t next_pn_ = 0;  // our (server) packet-number space

  // Spin reflection state: spin value of the largest-numbered short
  // packet received from the client (RFC 9000 §17.4).
  bool peer_spin_ = false;
  std::uint32_t largest_short_pn_ = 0;
  bool any_short_ = false;

  // Received packet numbers as disjoint [start, end) intervals — the
  // source of the ACK frame's ranges.
  std::map<std::uint32_t, std::uint32_t> rcvd_pns_;

  // Stream reassembly: [start, end) intervals strictly above rcv_next_.
  std::uint64_t rcv_next_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;
  std::uint64_t final_size_ = kNoFinalSize;
  static constexpr std::uint64_t kNoFinalSize = ~0ULL;

  std::function<void()> on_fin_;
};

}  // namespace p4s::quic
