// QuicFlow: a one-directional bulk transfer over the QUIC-like
// transport, mirroring TcpFlow's shape so experiments can swap the two.
// Owns the sender and receiver endpoints, allocates ports and
// connection IDs (deterministically — no RNG draws, so adding a flow
// never perturbs another component's random sequence), and exposes the
// per-flow counters the telemetry's ground truth reads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/host.hpp"
#include "quic/receiver.hpp"
#include "quic/sender.hpp"
#include "sim/simulation.hpp"

namespace p4s::quic {

class QuicFlow {
 public:
  struct Config {
    QuicSender::Config sender;
    QuicReceiver::Config receiver;
    /// Destination port; 0 picks the simulation's next default port.
    std::uint16_t dst_port = 0;
    /// Source port; 0 allocates an ephemeral port on the source host.
    std::uint16_t src_port = 0;
    /// Connection IDs; 0 derives one from the endpoint addresses (the
    /// DCID-collision tests pin them explicitly).
    std::uint64_t client_cid = 0;
    std::uint64_t server_cid = 0;
  };

  QuicFlow(sim::Simulation& sim, net::Host& src, net::Host& dst,
           Config config);
  QuicFlow(sim::Simulation& sim, net::Host& src, net::Host& dst)
      : QuicFlow(sim, src, dst, Config{}) {}

  /// Schedule connection establishment at absolute time `at`.
  void start_at(SimTime at);
  /// Schedule a graceful stop (FIN) at absolute time `at`.
  void stop_at(SimTime at);

  void set_on_complete(std::function<void()> cb);

  QuicSender& sender() { return *sender_; }
  const QuicSender& sender() const { return *sender_; }
  QuicReceiver& receiver() { return *receiver_; }
  const QuicReceiver& receiver() const { return *receiver_; }

  net::FiveTuple five_tuple() const { return sender_->five_tuple(); }
  /// DCID on client-to-server packets (what a path observer keys on).
  std::uint64_t server_cid() const { return server_cid_; }
  std::uint64_t client_cid() const { return client_cid_; }

  /// Receiver goodput averaged over the flow's own active interval, bps.
  double average_goodput_bps(SimTime now) const;

  bool complete() const {
    return sender_->state() == QuicSender::State::kClosed;
  }

 private:
  sim::Simulation& sim_;
  std::uint64_t client_cid_ = 0;
  std::uint64_t server_cid_ = 0;
  std::unique_ptr<QuicSender> sender_;
  std::unique_ptr<QuicReceiver> receiver_;
};

}  // namespace p4s::quic
