#include "quic/flow.hpp"

namespace p4s::quic {

namespace {

// Deterministic connection ID from the connection's addressing, salted
// per side (splitmix64 finalizer — the same mixer the fabric uses for
// per-shard seeds). Distinct flows get distinct CIDs without consuming
// simulation randomness.
std::uint64_t derive_cid(net::Ipv4Address a, net::Ipv4Address b,
                         std::uint16_t pa, std::uint16_t pb,
                         std::uint64_t salt) {
  std::uint64_t x = (static_cast<std::uint64_t>(a) << 32) ^ b;
  x ^= (static_cast<std::uint64_t>(pa) << 16) ^ pb;
  x += salt + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

QuicFlow::QuicFlow(sim::Simulation& sim, net::Host& src, net::Host& dst,
                   Config config)
    : sim_(sim) {
  const std::uint16_t dst_port =
      config.dst_port != 0 ? config.dst_port : sim.allocate_default_port();
  const std::uint16_t src_port =
      config.src_port != 0 ? config.src_port : src.allocate_port();
  client_cid_ = config.client_cid != 0
                    ? config.client_cid
                    : derive_cid(src.ip(), dst.ip(), src_port, dst_port, 1);
  server_cid_ = config.server_cid != 0
                    ? config.server_cid
                    : derive_cid(src.ip(), dst.ip(), src_port, dst_port, 2);

  QuicReceiver::Config rc = config.receiver;
  rc.my_cid = server_cid_;
  rc.peer_cid = client_cid_;
  receiver_ = std::make_unique<QuicReceiver>(sim, dst, dst_port, rc);

  QuicSender::Config sc = config.sender;
  sc.my_cid = client_cid_;
  sc.peer_cid = server_cid_;
  sender_ = std::make_unique<QuicSender>(sim, src, dst.ip(), src_port,
                                         dst_port, sc);
}

void QuicFlow::start_at(SimTime at) {
  sim_.at(at, [this]() { sender_->start(); });
}

void QuicFlow::stop_at(SimTime at) {
  sim_.at(at, [this]() { sender_->stop(); });
}

void QuicFlow::set_on_complete(std::function<void()> cb) {
  sender_->set_on_complete(std::move(cb));
}

double QuicFlow::average_goodput_bps(SimTime now) const {
  const auto& s = sender_->stats();
  if (s.established_time == 0) return 0.0;
  const SimTime end = s.end_time != 0 ? s.end_time : now;
  if (end <= s.established_time) return 0.0;
  const double secs = units::to_seconds(end - s.established_time);
  return static_cast<double>(receiver_->stats().goodput_bytes) * 8.0 / secs;
}

}  // namespace p4s::quic
