// QUIC-like sender endpoint (the client side of a one-directional bulk
// transfer over the encrypted transport).
//
// A deliberately small subset of RFC 9000 machinery, enough to exercise
// the monitoring pipeline against encrypted traffic:
//
//   * an Initial long-header handshake, retransmitted on timeout until
//     the server's Initial arrives (1-RTT establishment);
//   * windowed STREAM delivery in short-header packets, one monotonically
//     increasing packet-number space, retransmission always under a NEW
//     packet number (QUIC never reuses one — RTT samples need no Karn
//     rule);
//   * packet-threshold loss detection (a packet is lost once packets
//     numbered kPacketThreshold above it are acknowledged) with an RFC
//     6298-style RTO as the backstop, reusing tcp::RttEstimator;
//   * the latency spin bit (RFC 9000 §17.4): each short packet carries
//     the INVERSE of the spin observed on the largest-numbered packet
//     from the server, so the observable bit flips once per RTT.
//
// ACK frames ride inside the opaque payload (net::QuicFrames) — the P4
// pipeline cannot match on them, unlike TCP's cleartext ACKs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "tcp/rtt_estimator.hpp"

namespace p4s::quic {

class QuicSender {
 public:
  struct Config {
    /// Stream bytes per short packet (QUIC's usual 1200-byte datagram
    /// budget minus header + frame overhead).
    std::uint32_t mss = 1200;
    /// Fixed flow-control window: maximum unacknowledged stream bytes.
    std::uint64_t window_bytes = 256ULL << 10;
    /// Total stream bytes to transfer; 0 = unbounded until stop().
    std::uint64_t bytes_to_send = 0;
    /// Opaque payload of the Initial (clients pad theirs to a full
    /// datagram per RFC 9000 §14.1).
    std::uint32_t handshake_payload_bytes = 1200;
    /// Ciphertext overhead per short packet beyond the stream bytes
    /// (frame header + AEAD tag).
    std::uint32_t crypto_overhead_bytes = 16;
    /// Declare a packet lost once one numbered this far above it is
    /// acknowledged (RFC 9002 packet-number threshold).
    std::uint32_t packet_threshold = 3;
    /// Connection IDs; assigned by QuicFlow.
    std::uint64_t my_cid = 0;    // our SCID == the server's reply DCID
    std::uint64_t peer_cid = 0;  // DCID on everything we send
    tcp::RttEstimator::Config rtt;
  };

  struct Stats {
    SimTime start_time = 0;
    SimTime established_time = 0;
    SimTime end_time = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t stream_bytes_sent = 0;  // new data only
    std::uint64_t bytes_acked = 0;        // stream bytes acknowledged
    std::uint64_t retransmitted_packets = 0;
    std::uint64_t lost_packets = 0;  // declared by threshold detection
    std::uint64_t rto_count = 0;
    std::uint64_t handshake_retx = 0;
    std::uint64_t spin_flips = 0;  // edges we emitted on the wire
  };

  enum class State { kIdle, kHandshake, kEstablished, kClosed };

  QuicSender(sim::Simulation& sim, net::Host& host, net::Ipv4Address dst,
             std::uint16_t src_port, std::uint16_t dst_port, Config config);
  ~QuicSender();

  QuicSender(const QuicSender&) = delete;
  QuicSender& operator=(const QuicSender&) = delete;

  /// Initiate the connection (sends the Initial).
  void start();
  /// Stop offering new data; closes with FIN once everything is acked.
  void stop();

  void on_packet(const net::Packet& pkt);

  void set_on_complete(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  State state() const { return state_; }
  const Stats& stats() const { return stats_; }
  const tcp::RttEstimator& rtt() const { return rtt_; }
  std::uint64_t flight_bytes() const { return flight_bytes_; }
  net::FiveTuple five_tuple() const;

 private:
  /// One unacknowledged packet (keyed by its packet number).
  struct SentPacket {
    std::uint64_t offset = 0;
    std::uint32_t len = 0;  // 0 for the Initial and a pure-FIN packet
    bool fin = false;
    bool initial = false;
    SimTime sent_at = 0;
  };

  void send_initial(bool retransmit);
  void process_ack(const net::QuicFrames& frames);
  void detect_losses(std::uint32_t largest_acked);
  void resend(std::uint32_t old_pn);
  void try_send();
  void send_stream_packet(std::uint64_t offset, std::uint32_t len, bool fin,
                          bool retransmit);
  bool current_spin() const { return !server_spin_; }
  void maybe_finish();
  void arm_rto();
  void on_rto_expired();

  sim::Simulation& sim_;
  net::Host& host_;
  net::Ipv4Address dst_ip_;
  std::uint16_t src_port_;
  std::uint16_t dst_port_;
  Config config_;
  Stats stats_;
  tcp::RttEstimator rtt_;

  State state_ = State::kIdle;
  std::uint32_t next_pn_ = 0;
  std::uint64_t next_offset_ = 0;    // next new stream byte to send
  std::uint64_t target_bytes_ = 0;   // stream length (may be set by stop())
  bool unbounded_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::uint64_t flight_bytes_ = 0;   // stream bytes in unacked packets

  // Unacked packets by packet number (ordered — threshold loss detection
  // walks the low end).
  std::map<std::uint32_t, SentPacket> inflight_;
  std::uint32_t largest_acked_ = 0;
  bool any_acked_ = false;

  // Spin state: spin bit of the largest-numbered short packet received
  // from the server; we transmit its inverse (§17.4).
  bool server_spin_ = false;
  std::uint32_t largest_server_pn_ = 0;
  bool any_server_short_ = false;
  bool last_sent_spin_ = false;
  bool any_sent_short_ = false;

  sim::EventHandle rto_timer_;
  std::function<void()> on_complete_;
};

}  // namespace p4s::quic
