#include "quic/receiver.hpp"

#include <algorithm>

namespace p4s::quic {

QuicReceiver::QuicReceiver(sim::Simulation& sim, net::Host& host,
                           std::uint16_t port, Config config)
    : sim_(sim), host_(host), port_(port), config_(config) {
  host_.bind(net::Protocol::kUdp, port_,
             [this](const net::Packet& pkt) { on_packet(pkt); });
}

QuicReceiver::~QuicReceiver() { host_.unbind(net::Protocol::kUdp, port_); }

void QuicReceiver::on_packet(const net::Packet& pkt) {
  if (!pkt.is_quic()) return;
  if (pkt.quic.dcid != config_.my_cid) {
    ++stats_.wrong_dcid;
    return;
  }
  if (pkt.quic.long_form) {
    handle_initial(pkt);
  } else {
    handle_short(pkt);
  }
}

void QuicReceiver::handle_initial(const net::Packet& pkt) {
  if (!established_) {
    established_ = true;
    peer_ip_ = pkt.ip.src;
    peer_port_ = pkt.udp().src_port;
  }
  // A retransmitted Initial (our reply was lost) re-answers identically.
  record_pn(pkt.quic.packet_number);
  ++stats_.received_packets;

  net::QuicHeader hdr;
  hdr.long_form = true;
  hdr.type = 0;  // Initial
  hdr.dcid = config_.peer_cid;
  hdr.scid = config_.my_cid;
  hdr.packet_number = next_pn_++;
  net::Packet reply =
      net::make_quic_packet(host_.ip(), peer_ip_, port_, peer_port_, hdr,
                            config_.ack_payload_bytes);
  fill_ack(reply.quic_frames);
  ++stats_.acks_sent;
  host_.send(std::move(reply));
}

void QuicReceiver::handle_short(const net::Packet& pkt) {
  if (!established_) return;
  if (pkt.ip.src != peer_ip_ || pkt.udp().src_port != peer_port_) return;

  const std::uint32_t pn = pkt.quic.packet_number;
  if (!any_short_ || pn > largest_short_pn_) {
    largest_short_pn_ = pn;
    peer_spin_ = pkt.quic.spin;
    any_short_ = true;
  }
  if (!record_pn(pn)) {
    ++stats_.duplicate_packets;
    send_ack();
    return;
  }
  ++stats_.received_packets;

  const net::QuicFrames& frames = pkt.quic_frames;
  if (!frames.has_stream) return;  // ack-only packets are not ack-eliciting

  if (stats_.first_data_time == 0) stats_.first_data_time = sim_.now();
  stats_.last_data_time = sim_.now();

  std::uint64_t start = frames.stream_offset;
  std::uint64_t end = start + frames.stream_len;
  if (frames.stream_fin) final_size_ = end;

  if (end > rcv_next_) {
    start = std::max(start, rcv_next_);
    if (start == rcv_next_) {
      rcv_next_ = end;
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_next_) {
        if (it->second > rcv_next_) rcv_next_ = it->second;
        it = ooo_.erase(it);
      }
    } else {
      ++stats_.out_of_order_packets;
      auto it = ooo_.lower_bound(start);
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) {
          start = prev->first;
          end = std::max(end, prev->second);
          ooo_.erase(prev);
        }
      }
      it = ooo_.lower_bound(start);
      while (it != ooo_.end() && it->first <= end) {
        end = std::max(end, it->second);
        it = ooo_.erase(it);
      }
      ooo_[start] = end;
    }
  }
  stats_.goodput_bytes = rcv_next_;

  const bool was_fin = stats_.fin_received;
  if (final_size_ != kNoFinalSize && rcv_next_ >= final_size_) {
    stats_.fin_received = true;
  }
  send_ack();
  if (!was_fin && stats_.fin_received && on_fin_) on_fin_();
}

bool QuicReceiver::record_pn(std::uint32_t pn) {
  std::uint32_t start = pn;
  std::uint32_t end = pn + 1;
  // upper_bound: first interval starting strictly above pn; its
  // predecessor is the only interval that could already cover pn.
  auto it = rcvd_pns_.upper_bound(pn);
  if (it != rcvd_pns_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > pn) return false;  // duplicate
    if (prev->second == pn) {  // extends the predecessor
      start = prev->first;
      rcvd_pns_.erase(prev);
    }
  }
  auto next = rcvd_pns_.find(end);
  if (next != rcvd_pns_.end()) {  // bridges into the successor
    end = next->second;
    rcvd_pns_.erase(next);
  }
  rcvd_pns_[start] = end;
  return true;
}

void QuicReceiver::fill_ack(net::QuicFrames& frames) const {
  frames.has_ack = true;
  frames.ack_count = 0;
  // Largest range first (ack[0] carries the largest packet number).
  for (auto it = rcvd_pns_.rbegin();
       it != rcvd_pns_.rend() && frames.ack_count < frames.ack.size();
       ++it) {
    frames.ack[frames.ack_count++] =
        net::QuicAckRange{it->first, it->second - 1};
  }
}

void QuicReceiver::send_ack() {
  net::QuicHeader hdr;
  hdr.long_form = false;
  hdr.spin = peer_spin_;  // server reflects the client's spin (§17.4)
  hdr.dcid = config_.peer_cid;
  hdr.packet_number = next_pn_++;
  net::Packet ack =
      net::make_quic_packet(host_.ip(), peer_ip_, port_, peer_port_, hdr,
                            config_.ack_payload_bytes);
  fill_ack(ack.quic_frames);
  ++stats_.acks_sent;
  host_.send(std::move(ack));
}

}  // namespace p4s::quic
