#include "quic/sender.hpp"

#include <algorithm>
#include <vector>

namespace p4s::quic {

QuicSender::QuicSender(sim::Simulation& sim, net::Host& host,
                       net::Ipv4Address dst, std::uint16_t src_port,
                       std::uint16_t dst_port, Config config)
    : sim_(sim),
      host_(host),
      dst_ip_(dst),
      src_port_(src_port),
      dst_port_(dst_port),
      config_(config),
      rtt_(config.rtt) {
  unbounded_ = config_.bytes_to_send == 0;
  target_bytes_ = unbounded_ ? ~0ULL : config_.bytes_to_send;
  host_.bind(net::Protocol::kUdp, src_port_,
             [this](const net::Packet& pkt) { on_packet(pkt); });
}

QuicSender::~QuicSender() {
  rto_timer_.cancel();
  host_.unbind(net::Protocol::kUdp, src_port_);
}

net::FiveTuple QuicSender::five_tuple() const {
  return net::FiveTuple{host_.ip(), dst_ip_, src_port_, dst_port_,
                        static_cast<std::uint8_t>(net::Protocol::kUdp)};
}

void QuicSender::start() {
  if (state_ != State::kIdle) return;
  state_ = State::kHandshake;
  stats_.start_time = sim_.now();
  send_initial(/*retransmit=*/false);
}

void QuicSender::stop() {
  if (state_ == State::kClosed) return;
  if (!unbounded_) return;  // bounded transfers close themselves
  unbounded_ = false;
  target_bytes_ = next_offset_;
  if (state_ == State::kEstablished && !fin_sent_) {
    // All offered data is out; close with a pure-FIN packet.
    send_stream_packet(next_offset_, 0, /*fin=*/true, /*retransmit=*/false);
    fin_sent_ = true;
  }
}

void QuicSender::send_initial(bool retransmit) {
  net::QuicHeader hdr;
  hdr.long_form = true;
  hdr.type = 0;  // Initial
  hdr.dcid = config_.peer_cid;
  hdr.scid = config_.my_cid;
  const std::uint32_t pn = next_pn_++;
  hdr.packet_number = pn;
  inflight_[pn] = SentPacket{0, 0, false, /*initial=*/true, sim_.now()};
  ++stats_.packets_sent;
  if (retransmit) ++stats_.handshake_retx;
  host_.send(net::make_quic_packet(host_.ip(), dst_ip_, src_port_,
                                   dst_port_, hdr,
                                   config_.handshake_payload_bytes));
  arm_rto();
}

void QuicSender::on_packet(const net::Packet& pkt) {
  if (!pkt.is_quic() || state_ == State::kIdle || state_ == State::kClosed)
    return;
  if (pkt.quic.dcid != config_.my_cid) return;

  if (!pkt.quic.long_form) {
    const std::uint32_t pn = pkt.quic.packet_number;
    if (!any_server_short_ || pn > largest_server_pn_) {
      largest_server_pn_ = pn;
      server_spin_ = pkt.quic.spin;
      any_server_short_ = true;
    }
  } else if (state_ == State::kHandshake) {
    state_ = State::kEstablished;
    stats_.established_time = sim_.now();
  }

  if (pkt.quic_frames.has_ack) process_ack(pkt.quic_frames);
  if (state_ == State::kEstablished) try_send();
  maybe_finish();
}

void QuicSender::process_ack(const net::QuicFrames& frames) {
  bool newly_acked = false;
  std::uint32_t largest_newly = 0;
  SimTime largest_sent_at = 0;
  for (std::uint8_t i = 0; i < frames.ack_count; ++i) {
    const net::QuicAckRange& r = frames.ack[i];
    auto it = inflight_.lower_bound(r.start);
    while (it != inflight_.end() && it->first <= r.end) {
      const SentPacket& sp = it->second;
      stats_.bytes_acked += sp.len;
      flight_bytes_ -= sp.len;
      if (sp.fin) fin_acked_ = true;
      if (!newly_acked || it->first > largest_newly) {
        largest_newly = it->first;
        largest_sent_at = sp.sent_at;
      }
      newly_acked = true;
      it = inflight_.erase(it);
    }
    if (!any_acked_ || r.end > largest_acked_) {
      largest_acked_ = r.end;
      any_acked_ = true;
    }
  }
  if (!newly_acked) return;
  // Packet numbers are never reused, so every sample is unambiguous —
  // no Karn rule needed. Sample from the largest newly-acked packet.
  rtt_.add_sample(sim_.now() - largest_sent_at);
  detect_losses(largest_acked_);
  if (inflight_.empty()) {
    rto_timer_.cancel();
  } else {
    arm_rto();
  }
}

void QuicSender::detect_losses(std::uint32_t largest_acked) {
  if (largest_acked < config_.packet_threshold) return;
  const std::uint32_t lost_below = largest_acked - config_.packet_threshold;
  std::vector<SentPacket> lost;
  auto it = inflight_.begin();
  while (it != inflight_.end() && it->first < lost_below) {
    lost.push_back(it->second);
    flight_bytes_ -= it->second.len;
    ++stats_.lost_packets;
    it = inflight_.erase(it);
  }
  for (const SentPacket& sp : lost) {
    if (sp.initial) {
      send_initial(/*retransmit=*/true);
    } else {
      send_stream_packet(sp.offset, sp.len, sp.fin, /*retransmit=*/true);
    }
  }
}

void QuicSender::try_send() {
  if (state_ != State::kEstablished) return;
  while (next_offset_ < target_bytes_ &&
         flight_bytes_ + config_.mss <= config_.window_bytes) {
    const std::uint64_t remaining = target_bytes_ - next_offset_;
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.mss, remaining));
    const bool fin = !unbounded_ && next_offset_ + len == target_bytes_;
    send_stream_packet(next_offset_, len, fin, /*retransmit=*/false);
    next_offset_ += len;
    stats_.stream_bytes_sent += len;
    if (fin) fin_sent_ = true;
  }
}

void QuicSender::send_stream_packet(std::uint64_t offset, std::uint32_t len,
                                    bool fin, bool retransmit) {
  net::QuicHeader hdr;
  hdr.long_form = false;
  hdr.spin = current_spin();
  hdr.dcid = config_.peer_cid;
  const std::uint32_t pn = next_pn_++;
  hdr.packet_number = pn;
  if (!any_sent_short_ || hdr.spin != last_sent_spin_) {
    if (any_sent_short_) ++stats_.spin_flips;
    last_sent_spin_ = hdr.spin;
    any_sent_short_ = true;
  }
  net::Packet pkt = net::make_quic_packet(
      host_.ip(), dst_ip_, src_port_, dst_port_, hdr,
      len + config_.crypto_overhead_bytes);
  pkt.quic_frames.has_stream = true;
  pkt.quic_frames.stream_offset = offset;
  pkt.quic_frames.stream_len = len;
  pkt.quic_frames.stream_fin = fin;
  inflight_[pn] = SentPacket{offset, len, fin, false, sim_.now()};
  flight_bytes_ += len;
  ++stats_.packets_sent;
  if (retransmit) ++stats_.retransmitted_packets;
  host_.send(std::move(pkt));
  arm_rto();
}

void QuicSender::maybe_finish() {
  if (state_ != State::kEstablished) return;
  if (!fin_sent_ || !fin_acked_ || !inflight_.empty()) return;
  state_ = State::kClosed;
  stats_.end_time = sim_.now();
  rto_timer_.cancel();
  if (on_complete_) on_complete_();
}

void QuicSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = sim_.after(rtt_.rto(), [this]() { on_rto_expired(); });
}

void QuicSender::on_rto_expired() {
  if (inflight_.empty() || state_ == State::kClosed) return;
  ++stats_.rto_count;
  rtt_.backoff();
  // Retransmit the oldest outstanding packet under a fresh number; the
  // rest follow via threshold detection once acks resume.
  const std::uint32_t oldest = inflight_.begin()->first;
  resend(oldest);
  arm_rto();
}

void QuicSender::resend(std::uint32_t old_pn) {
  auto it = inflight_.find(old_pn);
  if (it == inflight_.end()) return;
  const SentPacket sp = it->second;
  flight_bytes_ -= sp.len;
  inflight_.erase(it);
  if (sp.initial) {
    send_initial(/*retransmit=*/true);
  } else {
    send_stream_packet(sp.offset, sp.len, sp.fin, /*retransmit=*/true);
  }
}

}  // namespace p4s::quic
