#include "net/fault_injector.hpp"

#include <algorithm>

namespace p4s::net {

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const auto& fault : script_) {
    sim_.at(fault.at, [this, fault]() { inject(fault); });
  }
  if (random_enabled_) {
    rng_.reseed(random_.seed);
    if (random_.resets_per_second > 0.0) schedule_next_random_reset();
    if (random_.stalls_per_second > 0.0) schedule_next_random_stall();
  }
}

void FaultInjector::inject(const ScheduledFault& fault) {
  switch (fault.kind) {
    case FaultKind::kReset:
      ++resets_injected_;
      channel_.reset();
      break;
    case FaultKind::kStall:
      ++stalls_injected_;
      channel_.stall(fault.duration);
      break;
  }
}

void FaultInjector::schedule_next_random_reset() {
  const SimTime gap = units::seconds_f(
      rng_.next_exponential(1.0 / random_.resets_per_second));
  const SimTime at = sim_.now() + std::max<SimTime>(1, gap);
  if (at >= random_.until) return;
  sim_.at(at, [this]() {
    inject({sim_.now(), FaultKind::kReset, 0});
    schedule_next_random_reset();
  });
}

void FaultInjector::schedule_next_random_stall() {
  const SimTime gap = units::seconds_f(
      rng_.next_exponential(1.0 / random_.stalls_per_second));
  const SimTime at = sim_.now() + std::max<SimTime>(1, gap);
  if (at >= random_.until) return;
  sim_.at(at, [this]() {
    const SimTime duration =
        random_.stall_min +
        rng_.next_below(random_.stall_max - random_.stall_min + 1);
    inject({sim_.now(), FaultKind::kStall, duration});
    schedule_next_random_stall();
  });
}

}  // namespace p4s::net
