#include "net/queue.hpp"

#include <algorithm>

namespace p4s::net {

bool DropTailQueue::try_enqueue(const Packet& pkt, SimTime now) {
  const std::uint64_t bytes = pkt.wire_bytes();
  if (occupancy_bytes_ + bytes > capacity_bytes_) {
    ++stats_.dropped_pkts;
    stats_.dropped_bytes += bytes;
    return false;
  }
  occupancy_bytes_ += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, occupancy_bytes_);
  ++stats_.enqueued_pkts;
  stats_.enqueued_bytes += bytes;
  entries_.push_back(Entry{pkt, now});
  return true;
}

std::optional<DropTailQueue::Entry> DropTailQueue::dequeue() {
  if (entries_.empty()) return std::nullopt;
  Entry e = std::move(entries_.front());
  entries_.pop_front();
  occupancy_bytes_ -= e.pkt.wire_bytes();
  ++stats_.dequeued_pkts;
  return e;
}

}  // namespace p4s::net
