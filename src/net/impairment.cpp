#include "net/impairment.hpp"

#include <algorithm>
#include <cmath>

namespace p4s::net {

MmWaveLink::MmWaveLink(sim::Simulation& sim, Link& link, Config config)
    : sim_(sim), link_(link), config_(config) {
  if (config_.nominal_rate_bps == 0) {
    config_.nominal_rate_bps = link_.rate_bps();
  }
}

void MmWaveLink::schedule_blockage(SimTime start, SimTime duration) {
  sim_.at(start, [this]() { set_blocked(true); });
  sim_.at(start + duration, [this]() { set_blocked(false); });
}

void MmWaveLink::set_blocked(bool blocked) {
  if (blocked == blocked_) return;
  blocked_ = blocked;
  last_transition_ = sim_.now();
  if (blocked) {
    const double degraded = static_cast<double>(config_.nominal_rate_bps) /
                            std::max(1.0, config_.degradation_factor);
    link_.set_rate(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(degraded)));
    link_.set_loss_rate(config_.blocked_loss_rate);
  } else {
    link_.set_rate(config_.nominal_rate_bps);
    link_.set_loss_rate(0.0);
  }
}

double MmWaveLink::rssi_dbm() {
  const double from = blocked_ ? config_.clear_rssi_dbm
                               : config_.blocked_rssi_dbm;
  const double to = blocked_ ? config_.blocked_rssi_dbm
                             : config_.clear_rssi_dbm;
  const SimTime elapsed = sim_.now() - last_transition_;
  double level = to;
  if (config_.rssi_ramp > 0 && elapsed < config_.rssi_ramp) {
    const double f = static_cast<double>(elapsed) /
                     static_cast<double>(config_.rssi_ramp);
    level = from + (to - from) * f;
  }
  const double noise =
      (sim_.rng().next_double() * 2.0 - 1.0) * config_.rssi_noise_dbm;
  return level + noise;
}

}  // namespace p4s::net
