#include "net/packet.hpp"

#include <cassert>
#include <cstdio>

namespace p4s::net {

std::string to_string(Ipv4Address addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

std::string FiveTuple::to_string() const {
  return net::to_string(src_ip) + ":" + std::to_string(src_port) + "->" +
         net::to_string(dst_ip) + ":" + std::to_string(dst_port) + "/" +
         std::to_string(protocol);
}

std::uint32_t Packet::l4_header_bytes() const {
  return std::visit([](const auto& h) { return h.header_bytes(); }, l4);
}

std::uint32_t Packet::payload_bytes() const {
  const std::uint32_t hdrs = ip.header_bytes() + l4_header_bytes();
  assert(ip.total_len >= hdrs);
  return ip.total_len - hdrs;
}

FiveTuple Packet::five_tuple() const {
  FiveTuple t;
  t.src_ip = ip.src;
  t.dst_ip = ip.dst;
  t.protocol = ip.protocol;
  if (is_tcp()) {
    t.src_port = tcp().src_port;
    t.dst_port = tcp().dst_port;
  } else if (is_udp()) {
    t.src_port = udp().src_port;
    t.dst_port = udp().dst_port;
  } else if (is_icmp()) {
    // ICMP has no ports; the ident field disambiguates echo sessions.
    t.src_port = icmp().ident;
    t.dst_port = icmp().ident;
  }
  return t;
}

namespace {
std::uint64_t next_uid() {
  static std::uint64_t uid = 0;
  return ++uid;
}
}  // namespace

Packet make_tcp_packet(Ipv4Address src, Ipv4Address dst,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint32_t seq, std::uint32_t ack,
                       std::uint8_t flags, std::uint32_t payload,
                       std::uint32_t window) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.protocol = static_cast<std::uint8_t>(Protocol::kTcp);
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.window = window;
  p.l4 = tcp;
  p.ip.total_len =
      static_cast<std::uint16_t>(p.ip.header_bytes() + tcp.header_bytes() +
                                 payload);
  p.uid = next_uid();
  return p;
}

Packet make_udp_packet(Ipv4Address src, Ipv4Address dst,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint32_t payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.protocol = static_cast<std::uint8_t>(Protocol::kUdp);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(udp.header_bytes() + payload);
  p.l4 = udp;
  p.ip.total_len = static_cast<std::uint16_t>(p.ip.header_bytes() +
                                              udp.length);
  p.uid = next_uid();
  return p;
}

Packet make_icmp_packet(Ipv4Address src, Ipv4Address dst, std::uint8_t type,
                        std::uint16_t ident, std::uint16_t seq,
                        std::uint32_t payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.protocol = static_cast<std::uint8_t>(Protocol::kIcmp);
  IcmpHeader icmp;
  icmp.type = type;
  icmp.ident = ident;
  icmp.seq = seq;
  p.l4 = icmp;
  p.ip.total_len = static_cast<std::uint16_t>(
      p.ip.header_bytes() + icmp.header_bytes() + payload);
  p.uid = next_uid();
  return p;
}

Packet make_quic_packet(Ipv4Address src, Ipv4Address dst,
                        std::uint16_t src_port, std::uint16_t dst_port,
                        const QuicHeader& hdr, std::uint32_t payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.protocol = static_cast<std::uint8_t>(Protocol::kUdp);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(udp.header_bytes() +
                                          hdr.header_bytes() + payload);
  p.l4 = udp;
  p.ip.total_len =
      static_cast<std::uint16_t>(p.ip.header_bytes() + udp.length);
  p.quic = hdr;
  p.has_quic = true;
  p.uid = next_uid();
  return p;
}

}  // namespace p4s::net
