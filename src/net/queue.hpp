// Drop-tail FIFO queue sized in bytes, as found on the legacy core switch
// the paper monitors. Records per-packet enqueue timestamps so the egress
// side can compute the queuing delay the TAP pair observes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace p4s::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  struct Entry {
    Packet pkt;
    SimTime enqueued_at;
  };

  struct Stats {
    std::uint64_t enqueued_pkts = 0;
    std::uint64_t dequeued_pkts = 0;
    std::uint64_t dropped_pkts = 0;
    std::uint64_t enqueued_bytes = 0;
    std::uint64_t dropped_bytes = 0;
    std::uint64_t peak_bytes = 0;
  };

  /// Attempt to enqueue; drops (returns false) if the packet would push
  /// occupancy past capacity. Accounting uses wire bytes, matching how a
  /// real switch buffer fills.
  bool try_enqueue(const Packet& pkt, SimTime now);

  std::optional<Entry> dequeue();

  bool empty() const { return entries_.empty(); }
  std::uint64_t occupancy_bytes() const { return occupancy_bytes_; }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t depth_pkts() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  /// Occupancy as a fraction of capacity in [0, 1].
  double fill_fraction() const {
    if (capacity_bytes_ == 0) return 0.0;
    return static_cast<double>(occupancy_bytes_) /
           static_cast<double>(capacity_bytes_);
  }

 private:
  std::uint64_t capacity_bytes_;
  std::uint64_t occupancy_bytes_ = 0;
  std::deque<Entry> entries_;
  Stats stats_;
};

}  // namespace p4s::net
