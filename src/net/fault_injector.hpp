// FaultInjector: deterministic fault schedules for a ReportChannel.
//
// Two modes, freely combined:
//
//   * scripted — an explicit list of (time, kind, duration) entries keyed
//     off the sim clock ("reset at 10 s, 2 s stall at 20 s"), for
//     regression tests that must know exactly which faults fired;
//   * random — Poisson reset/stall processes from a private seeded PRNG,
//     active until a configurable horizon, for property tests sweeping
//     many schedules.
//
// The injector never touches the channel outside scheduled events, and
// counts what it actually injected so tests can assert that the faults
// fired (a resilience test that accidentally ran fault-free proves
// nothing). Every future scenario that wants a misbehaving report wire
// goes through this one class.
#pragma once

#include <cstdint>
#include <vector>

#include "net/report_channel.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace p4s::net {

class FaultInjector {
 public:
  enum class FaultKind : std::uint8_t { kReset, kStall };

  struct ScheduledFault {
    SimTime at = 0;
    FaultKind kind = FaultKind::kReset;
    /// Stall length; ignored for resets.
    SimTime duration = 0;
  };

  struct RandomProfile {
    /// Mean faults per second of each kind; 0 disables that kind.
    double resets_per_second = 0.0;
    double stalls_per_second = 0.0;
    /// Stall lengths drawn uniformly from [stall_min, stall_max].
    SimTime stall_min = units::milliseconds(50);
    SimTime stall_max = units::milliseconds(500);
    /// No random fault is injected at or after this time, so a run can
    /// always drain its retry queues before the horizon you run_until.
    SimTime until = units::seconds(30);
    std::uint64_t seed = 1;
  };

  FaultInjector(sim::Simulation& sim, ReportChannel& channel)
      : sim_(sim), channel_(channel), rng_(1) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Queue one scripted fault (call before arm()).
  void add(ScheduledFault fault) { script_.push_back(fault); }
  void reset_at(SimTime at) { add({at, FaultKind::kReset, 0}); }
  void stall_at(SimTime at, SimTime duration) {
    add({at, FaultKind::kStall, duration});
  }

  /// Enable the random processes (call before arm()).
  void enable_random(RandomProfile profile) {
    random_ = profile;
    random_enabled_ = true;
  }

  /// Schedule everything onto the sim clock. Call once.
  void arm();

  std::uint64_t resets_injected() const { return resets_injected_; }
  std::uint64_t stalls_injected() const { return stalls_injected_; }
  const std::vector<ScheduledFault>& script() const { return script_; }

 private:
  void inject(const ScheduledFault& fault);
  void schedule_next_random_reset();
  void schedule_next_random_stall();

  sim::Simulation& sim_;
  ReportChannel& channel_;
  sim::Rng rng_;
  std::vector<ScheduledFault> script_;
  RandomProfile random_;
  bool random_enabled_ = false;
  bool armed_ = false;
  std::uint64_t resets_injected_ = 0;
  std::uint64_t stalls_injected_ = 0;
};

}  // namespace p4s::net
