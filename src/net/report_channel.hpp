// ReportChannel: the control-plane -> Logstash "TCP connection" of
// Figure 7 as a simulated byte stream over the discrete-event clock.
//
// The seed code collapsed this wire to a direct function call, so the one
// link the whole report path depends on could never fail. This model
// restores the failure surface a production Science DMZ deployment faces:
//
//   * byte-stream semantics — what was sent as one write may arrive as
//     several chunks of arbitrary size (and one chunk may carry several
//     writes); receivers must reassemble;
//   * a bounded send buffer — send() rejects when the writer outruns the
//     connection, modeling a full socket buffer;
//   * slow-consumer backpressure — an optional drain rate paces delivery,
//     so a slow Logstash makes the buffer fill upstream;
//   * connection resets — everything buffered or in flight is lost and
//     the channel must be reconnected before it accepts writes again;
//   * stalls — delivery freezes for a window (the bytes survive), as in
//     a zero-window peer or a routing transient.
//
// All behaviour is driven by the owning sim::Simulation's clock and a
// channel-local PRNG stream, so a given seed reproduces byte-identical
// delivery. FaultInjector (fault_injector.hpp) schedules resets/stalls
// against this surface; ResilientReportSink (controlplane) makes the
// report path survive them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace p4s::net {

class ReportChannel {
 public:
  struct Config {
    /// One-way propagation delay per chunk.
    SimTime latency = units::microseconds(500);
    /// Send-buffer bound; send() fails once this much is queued.
    std::uint64_t send_buffer_bytes = 256 * 1024;
    /// Receiver drain rate; 0 = consume at line rate (no pacing).
    std::uint64_t drain_bps = 0;
    /// Largest chunk handed to the receiver in one call (MSS-like).
    std::uint64_t max_chunk_bytes = 1400;
    /// Randomize chunk sizes in [1, max_chunk_bytes] instead of always
    /// delivering full chunks — exercises reassembly at every offset.
    bool random_chunking = true;
    /// Seed for the channel's private PRNG (chunk sizing).
    std::uint64_t seed = 0x5ca1ab1e;
  };

  /// Receives the next delivered chunk, in order.
  using ChunkReceiver = std::function<void(std::string_view chunk)>;
  /// Invoked on every reset(), after buffered bytes are discarded.
  using DisconnectHandler = std::function<void()>;

  ReportChannel(sim::Simulation& sim, Config config);

  ReportChannel(const ReportChannel&) = delete;
  ReportChannel& operator=(const ReportChannel&) = delete;

  void set_receiver(ChunkReceiver receiver) {
    receiver_ = std::move(receiver);
  }
  /// Register a disconnect observer (both ends care: the sender to
  /// reconnect, the receiver to discard its partial reassembly state).
  void on_disconnect(DisconnectHandler handler) {
    disconnect_handlers_.push_back(std::move(handler));
  }

  /// (Re-)establish the connection. Counts a reconnect after the first.
  void connect();

  /// Queue bytes for delivery. Returns false — and accepts nothing —
  /// when disconnected or when the bytes don't fit in the send buffer.
  bool send(std::string_view bytes);

  // ---- Fault surface (driven by FaultInjector or tests directly) ------
  /// Drop the connection: all buffered and in-flight bytes are lost.
  void reset();
  /// Freeze delivery for `duration`; buffered bytes survive and resume.
  void stall(SimTime duration);

  bool connected() const { return connected_; }
  bool stalled() const { return sim_.now() < stalled_until_; }
  std::uint64_t buffered_bytes() const { return buffered_bytes_; }

  struct Stats {
    std::uint64_t bytes_accepted = 0;   // admitted by send()
    std::uint64_t bytes_delivered = 0;  // handed to the receiver
    std::uint64_t bytes_lost = 0;       // discarded by resets
    std::uint64_t chunks_delivered = 0;
    std::uint64_t sends_rejected = 0;   // send() refusals (full/closed)
    std::uint64_t resets = 0;
    std::uint64_t stalls = 0;
    std::uint64_t connects = 0;
  };
  const Stats& stats() const { return stats_; }
  /// connects minus the initial one.
  std::uint64_t reconnects() const {
    return stats_.connects > 0 ? stats_.connects - 1 : 0;
  }

  const Config& config() const { return config_; }

 private:
  void schedule_pump(SimTime delay);
  void pump();

  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  ChunkReceiver receiver_;
  std::vector<DisconnectHandler> disconnect_handlers_;

  bool connected_ = false;
  SimTime stalled_until_ = 0;
  /// Bumped on every reset; pending pump events from an older epoch are
  /// stale and must not deliver.
  std::uint64_t epoch_ = 0;
  bool pump_scheduled_ = false;
  /// Earliest time the next chunk may leave (drain-rate pacing).
  SimTime next_tx_at_ = 0;

  std::deque<char> buffer_;
  std::uint64_t buffered_bytes_ = 0;
  Stats stats_;
};

}  // namespace p4s::net
