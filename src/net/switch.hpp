// Legacy (non-programmable) switch: static routing over output ports.
// This is the "core switch" of Figure 3 — the device whose queue the
// P4-perfSONAR system observes from the outside via a pair of TAPs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

class LegacySwitch : public PacketSink {
 public:
  explicit LegacySwitch(std::string name) : name_(std::move(name)) {}

  /// Give the switch a router address. With an address set, packets whose
  /// TTL expires in transit generate an ICMP time-exceeded (type 11) back
  /// to the sender — what traceroute relies on. Without one, expired
  /// packets are dropped silently.
  void set_address(Ipv4Address addr) { address_ = addr; }
  Ipv4Address address() const { return address_; }

  /// Register an output port (non-owning; the topology owns ports).
  /// Returns the port index used by routes.
  std::size_t add_port(OutputPort& port);

  /// Exact-match route: packets to `dst` leave through `port_index`.
  void route(Ipv4Address dst, std::size_t port_index);
  void set_default_route(std::size_t port_index);
  /// Remove an exact route (falls back to the default route).
  void unroute(Ipv4Address dst);

  void on_packet(const Packet& pkt) override;

  /// Fired for every packet arriving at the switch, before forwarding.
  /// This is where the ingress TAP attaches. Replaces any previously
  /// installed hooks.
  void set_ingress_hook(std::function<void(const Packet&)> hook) {
    ingress_hooks_.clear();
    add_ingress_hook(std::move(hook));
  }

  /// Multicast variant: several TAPs can observe the same switch (the
  /// monitoring fabric attaches one pair per monitored site). Hooks fire
  /// in attachment order.
  void add_ingress_hook(std::function<void(const Packet&)> hook) {
    if (hook) ingress_hooks_.push_back(std::move(hook));
  }

  OutputPort& port(std::size_t index) { return *ports_.at(index); }
  std::size_t port_count() const { return ports_.size(); }
  const std::string& name() const { return name_; }

  std::uint64_t forwarded_pkts() const { return forwarded_pkts_; }
  std::uint64_t unroutable_pkts() const { return unroutable_pkts_; }
  std::uint64_t ttl_expired_pkts() const { return ttl_expired_pkts_; }

 private:
  void send_time_exceeded(const Packet& original);

  std::string name_;
  Ipv4Address address_ = 0;
  std::uint64_t ttl_expired_pkts_ = 0;
  std::vector<OutputPort*> ports_;
  std::unordered_map<Ipv4Address, std::size_t> fib_;
  std::size_t default_port_ = kNoPort;
  std::vector<std::function<void(const Packet&)>> ingress_hooks_;
  std::uint64_t forwarded_pkts_ = 0;
  std::uint64_t unroutable_pkts_ = 0;

  static constexpr std::size_t kNoPort = static_cast<std::size_t>(-1);
};

}  // namespace p4s::net
