// Passive optical TAP pair (§3.1, §4.2).
//
// The paper places one TAP on the fiber entering the core switch and one
// on the fiber leaving it; both mirror every photon to the P4 switch. The
// model duplicates each packet at the switch's ingress hook and at the
// monitored port's egress hook, tags the copy with its mirror point, and
// delivers it to the monitor after a fixed (equal) TAP-to-switch latency —
// equal latencies are what let the P4 program recover the queuing delay
// from the two copies' arrival-time difference.
#pragma once

#include <cstdint>
#include <functional>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

enum class MirrorPoint : std::uint8_t {
  kIngress = 0,  // copy taken as the packet enters the core switch
  kEgress = 1,   // copy taken as the packet leaves the core switch
};

/// Consumer of mirrored traffic (the P4 switch's two monitor ports).
class MirrorSink {
 public:
  virtual ~MirrorSink() = default;
  virtual void on_mirrored(const Packet& pkt, MirrorPoint point) = 0;
};

class OpticalTapPair {
 public:
  /// `tap_latency` models the fiber + TAP path to the monitor; it is the
  /// same for both mirror points, so it cancels in delay differences.
  OpticalTapPair(sim::Simulation& sim, MirrorSink& sink,
                 SimTime tap_latency = units::microseconds(1))
      : sim_(sim), sink_(sink), tap_latency_(tap_latency) {}

  /// Attach the ingress-side TAP to a switch (mirrors every arrival) and
  /// the egress-side TAP to one of its output ports (mirrors every
  /// departure on the monitored link).
  void attach(LegacySwitch& sw, OutputPort& monitored_port);

  std::uint64_t mirrored_pkts() const { return mirrored_pkts_; }

 private:
  void mirror(const Packet& pkt, MirrorPoint point);

  sim::Simulation& sim_;
  MirrorSink& sink_;
  SimTime tap_latency_;
  std::uint64_t mirrored_pkts_ = 0;
};

}  // namespace p4s::net
