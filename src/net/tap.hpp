// Passive optical TAP pair (§3.1, §4.2).
//
// The paper places one TAP on the fiber entering the core switch and one
// on the fiber leaving it; both mirror every photon to the P4 switch. The
// model duplicates each packet at the switch's ingress hook and at the
// monitored port's egress hook, tags the copy with its mirror point, and
// delivers it to the monitor after a fixed (equal) TAP-to-switch latency —
// equal latencies are what let the P4 program recover the queuing delay
// from the two copies' arrival-time difference.
//
// Hot-path design: a mirror copy is written into a reusable ring of
// pending deliveries (no per-copy closure capturing the packet) and the
// delivery event captures only `this` — the constant TAP latency makes
// deliveries strictly FIFO. Each packet's wire bytes are serialized once
// and shared between its ingress and egress copies through a small
// uid-keyed cache; the copies differ only in the TTL the core switch
// decremented, which is patched in place with an incremental checksum
// update instead of re-serializing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/wire.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

enum class MirrorPoint : std::uint8_t {
  kIngress = 0,  // copy taken as the packet enters the core switch
  kEgress = 1,   // copy taken as the packet leaves the core switch
};

/// Consumer of mirrored traffic (the P4 switch's two monitor ports).
class MirrorSink {
 public:
  virtual ~MirrorSink() = default;
  virtual void on_mirrored(const Packet& pkt, MirrorPoint point) = 0;
  /// Wire-level delivery: the packet plus its already-serialized header
  /// bytes (valid only for the duration of the call). Overridden by sinks
  /// that parse bytes (the P4 switch) to skip re-serialization; the
  /// default forwards to the packet-level hook.
  virtual void on_mirrored_wire(const Packet& pkt,
                                std::span<const std::uint8_t> bytes,
                                MirrorPoint point) {
    (void)bytes;
    on_mirrored(pkt, point);
  }
  /// Boundary-safe delivery: only the serialized bytes plus the original
  /// on-wire frame length — everything a pipeline shard's sink needs
  /// without referencing the main timeline's Packet object (which cannot
  /// cross the shard boundary). The P4 switch and the capture tee
  /// override this; the default synthesizes a minimal Packet carrying
  /// the wire length and takes the packet path.
  virtual void on_mirrored_bytes(std::span<const std::uint8_t> bytes,
                                 MirrorPoint point, std::uint32_t wire_len);
};

/// One mirror copy crossing the main-timeline -> pipeline-shard
/// boundary: the serialized header bytes, the mirror point, the
/// original on-wire frame length (pcap records preserve it) and the
/// delivery timestamp (mirror time + TAP latency — the conservative
/// lookahead bound). `seq` increases per boundary; together with the
/// timestamp and the shard id it totally orders boundary events, which
/// is what keeps the parallel merge deterministic.
struct MirrorFrame {
  SimTime at = 0;
  std::uint64_t seq = 0;
  std::uint32_t wire_len = 0;
  std::uint8_t len = 0;
  MirrorPoint point = MirrorPoint::kIngress;
  std::array<std::uint8_t, kMaxHeaderBytes> bytes;
};

/// Producer end of a shard boundary. Implemented by the fabric's
/// per-switch shard; push() must accept frames in non-decreasing `at`
/// order and may block (never deadlock) when the boundary is congested.
class MirrorBoundary {
 public:
  virtual ~MirrorBoundary() = default;
  virtual void push(const MirrorFrame& frame) = 0;
};

class OpticalTapPair {
 public:
  /// `tap_latency` models the fiber + TAP path to the monitor; it is the
  /// same for both mirror points, so it cancels in delay differences.
  OpticalTapPair(sim::Simulation& sim, MirrorSink& sink,
                 SimTime tap_latency = units::microseconds(1))
      : sim_(sim), sink_(sink), tap_latency_(tap_latency) {}

  /// Attach the ingress-side TAP to a switch (mirrors every arrival) and
  /// the egress-side TAP to one of its output ports (mirrors every
  /// departure on the monitored link).
  void attach(LegacySwitch& sw, OutputPort& monitored_port);

  /// Parallel-fabric mode: route mirror copies across `boundary` instead
  /// of scheduling deliveries on this timeline. The shard on the other
  /// side replays each frame at `frame.at` against its own clock and
  /// feeds the sink through on_mirrored_bytes(). Pass nullptr to return
  /// to in-timeline delivery (the serial path, bit-for-bit unchanged).
  void set_boundary(MirrorBoundary* boundary) { boundary_ = boundary; }

  std::uint64_t mirrored_pkts() const { return mirrored_pkts_; }
  /// Copies whose wire bytes were reused from the serialize-once cache
  /// (the egress copy of every packet both TAPs saw).
  std::uint64_t serialize_cache_hits() const { return cache_hits_; }

 private:
  struct PendingMirror {
    Packet pkt;
    std::array<std::uint8_t, kMaxHeaderBytes> bytes;
    std::uint8_t len = 0;
    MirrorPoint point = MirrorPoint::kIngress;
  };
  struct CacheEntry {
    std::uint64_t uid = 0;  // 0 = empty (real packets have uid > 0)
    std::array<std::uint8_t, kMaxHeaderBytes> bytes;
    std::uint8_t len = 0;
    std::uint8_t ttl = 0;
  };
  // Direct-mapped: must comfortably cover the packets in flight between
  // a packet's two mirror points (bounded by the core switch's queue).
  static constexpr std::size_t kCacheSlots = 1024;

  void mirror(const Packet& pkt, MirrorPoint point);
  void deliver_front();
  std::uint8_t serialize_shared(const Packet& pkt,
                                std::array<std::uint8_t, kMaxHeaderBytes>& out);

  PendingMirror& ring_push();
  void ring_grow();

  sim::Simulation& sim_;
  MirrorSink& sink_;
  SimTime tap_latency_;
  MirrorBoundary* boundary_ = nullptr;
  std::uint64_t boundary_seq_ = 0;
  std::uint64_t mirrored_pkts_ = 0;
  std::uint64_t cache_hits_ = 0;

  // Growable power-of-two ring of pending deliveries; slots (and their
  // byte buffers) are reused, so steady state allocates nothing.
  std::vector<PendingMirror> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;

  std::vector<CacheEntry> cache_ = std::vector<CacheEntry>(kCacheSlots);
};

}  // namespace p4s::net
