// Packet model.
//
// Packets are small value types: headers plus a virtual payload length.
// Payload *contents* are never materialized — every measurement in the
// paper depends only on header fields, lengths and timing — which keeps
// the simulator allocation-free on the data path. Byte-level header
// serialization for the P4 parser lives in net/wire.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "util/units.hpp"

namespace p4s::net {

using Ipv4Address = std::uint32_t;

/// Build an address from dotted-quad octets, e.g. ipv4(10,0,0,1).
constexpr Ipv4Address ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                           std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

std::string to_string(Ipv4Address addr);

enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

// TCP flag bits (matching the wire layout's low byte).
namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;          // 32-bit words; 5 -> 20 bytes, no options
  std::uint8_t dscp = 0;
  std::uint16_t total_len = 0;   // header + L4 header + payload, bytes
  std::uint16_t id = 0;          // per-sender increasing; used by the queue
                                 // monitor to match TAP copies
  std::uint8_t ttl = 64;
  std::uint8_t protocol = static_cast<std::uint8_t>(Protocol::kTcp);
  Ipv4Address src = 0;
  Ipv4Address dst = 0;

  std::uint32_t header_bytes() const { return ihl * 4u; }
};

/// SACK block: [start, end) in sequence space (RFC 2018).
struct SackBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // 32-bit words; 5 -> 20 bytes, no options
  std::uint8_t flags = 0;
  // Advertised window. Real TCP sends a 16-bit field plus a window-scale
  // option; the simulator stores the scaled value directly and the wire
  // codec encodes it as window>>kWindowShift with the shift fixed
  // topology-wide (matching how DTNs negotiate a constant scale).
  std::uint32_t window = 0;
  // SACK option (RFC 2018), up to 3 blocks. Carried in the header struct
  // for endpoint use; the wire codec does NOT serialize options and the
  // P4 parser never extracts them — matching real telemetry pipelines,
  // which ignore TCP options.
  std::array<SackBlock, 3> sack{};
  std::uint8_t sack_count = 0;

  std::uint32_t header_bytes() const { return data_offset * 4u; }
  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
};

/// Fixed window-scale shift used by the wire codec (the RFC 7323 maximum,
/// 2^14: encodes windows up to ~1 GiB, enough for high-BDP Science DMZ
/// flows).
inline constexpr unsigned kWindowShift = 14;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 8;  // header + payload

  std::uint32_t header_bytes() const { return 8; }
};

struct IcmpHeader {
  std::uint8_t type = 8;  // 8 = echo request, 0 = echo reply
  std::uint8_t code = 0;
  std::uint16_t ident = 0;
  std::uint16_t seq = 0;

  std::uint32_t header_bytes() const { return 8; }
};

/// QUIC-like packet header carried inside a UDP payload (a fixed-shape
/// subset of RFC 9000): long headers for the handshake (version + both
/// connection IDs visible), short headers for 1-RTT packets (DCID + the
/// latency spin bit, §17.4). Connection IDs are always 8 bytes and
/// packet numbers are always encoded on 4 — the simulator never needs
/// variable-length encodings, and a fixed shape keeps the P4 parse
/// graph honest about what a switch can extract without loops.
///
/// Everything BEYOND this header — stream data, ACK frames — is
/// ciphertext to the network: the wire codec emits only the header and
/// an opaque payload length, exactly like real QUIC short packets.
struct QuicHeader {
  bool long_form = false;  // long (handshake) vs short (1-RTT) header
  bool spin = false;       // latency spin bit; short headers only
  std::uint8_t type = 0;   // long-header packet type (0 = Initial)
  std::uint32_t version = 1;  // long headers only (QUIC v1)
  std::uint64_t dcid = 0;
  std::uint64_t scid = 0;  // long headers only
  std::uint32_t packet_number = 0;

  // byte0 + version(4) + dcid_len(1) + dcid(8) + scid_len(1) + scid(8)
  // + pn(4) = 27; short: byte0 + dcid(8) + pn(4) = 13.
  std::uint32_t header_bytes() const { return long_form ? 27u : 13u; }
};

/// Inclusive packet-number range [start, end] inside an ACK frame.
struct QuicAckRange {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
};

/// Modeled QUIC frame contents — the *plaintext* inside the encrypted
/// payload. Carried on the value type but NEVER serialized by the wire
/// codec (like AppData): the P4 pipeline sees only the opaque payload
/// length, so ACKs are invisible to passive observers. Only endpoints
/// decrypt these.
struct QuicFrames {
  // STREAM frame: [stream_offset, stream_offset + stream_len).
  bool has_stream = false;
  std::uint64_t stream_offset = 0;
  std::uint32_t stream_len = 0;
  bool stream_fin = false;
  // ACK frame: up to 3 ranges, ack[0] holds the largest packet number.
  bool has_ack = false;
  std::array<QuicAckRange, 3> ack{};
  std::uint8_t ack_count = 0;
};

/// 5-tuple flow key (§3.2: flows are characterized by their 5-tuple).
struct FiveTuple {
  Ipv4Address src_ip = 0;
  Ipv4Address dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  /// The reversed tuple identifies the ACK direction of a TCP flow (§4).
  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  std::string to_string() const;
};

/// Modeled application payload contents: the first bytes a measurement
/// tool writes into its UDP payload (a sequence number and a send
/// timestamp, as OWAMP-style tools do). Carried on the value type but
/// NEVER serialized by the wire codec — the P4 pipeline cannot see it,
/// only endpoints can, exactly like real payload bytes.
struct AppData {
  std::uint32_t seq = 0;
  SimTime timestamp = 0;
};

struct Packet {
  Ipv4Header ip;
  std::variant<TcpHeader, UdpHeader, IcmpHeader> l4;
  AppData app;
  /// QUIC header riding the UDP payload (valid when has_quic). The
  /// header bytes ARE serialized (observable); `quic_frames` is not.
  QuicHeader quic;
  QuicFrames quic_frames;
  bool has_quic = false;
  /// Simulator-unique id for tracing; not visible to the P4 pipeline.
  std::uint64_t uid = 0;

  bool is_tcp() const { return std::holds_alternative<TcpHeader>(l4); }
  bool is_udp() const { return std::holds_alternative<UdpHeader>(l4); }
  bool is_icmp() const { return std::holds_alternative<IcmpHeader>(l4); }
  bool is_quic() const { return has_quic && is_udp(); }

  TcpHeader& tcp() { return std::get<TcpHeader>(l4); }
  const TcpHeader& tcp() const { return std::get<TcpHeader>(l4); }
  UdpHeader& udp() { return std::get<UdpHeader>(l4); }
  const UdpHeader& udp() const { return std::get<UdpHeader>(l4); }
  IcmpHeader& icmp() { return std::get<IcmpHeader>(l4); }
  const IcmpHeader& icmp() const { return std::get<IcmpHeader>(l4); }

  std::uint32_t l4_header_bytes() const;
  /// L4 payload length in bytes (ip.total_len minus both header lengths).
  std::uint32_t payload_bytes() const;
  /// Total on-wire size used for serialization timing. We charge the IP
  /// total length plus a fixed L2 overhead (Ethernet header+FCS+preamble).
  std::uint32_t wire_bytes() const { return ip.total_len + kL2Overhead; }

  FiveTuple five_tuple() const;

  static constexpr std::uint32_t kL2Overhead = 38;
};

/// Build a TCP packet with consistent lengths.
Packet make_tcp_packet(Ipv4Address src, Ipv4Address dst,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint32_t seq, std::uint32_t ack,
                       std::uint8_t flags, std::uint32_t payload,
                       std::uint32_t window);

/// Build a UDP packet with consistent lengths.
Packet make_udp_packet(Ipv4Address src, Ipv4Address dst,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint32_t payload);

/// Build an ICMP echo request/reply with consistent lengths.
Packet make_icmp_packet(Ipv4Address src, Ipv4Address dst, std::uint8_t type,
                        std::uint16_t ident, std::uint16_t seq,
                        std::uint32_t payload);

/// Build a QUIC packet (UDP + QUIC header) with consistent lengths.
/// `payload` is the opaque encrypted-frame length in bytes (NOT
/// including the QUIC header itself, which hdr.header_bytes() adds).
Packet make_quic_packet(Ipv4Address src, Ipv4Address dst,
                        std::uint16_t src_port, std::uint16_t dst_port,
                        const QuicHeader& hdr, std::uint32_t payload);

/// Anything that consumes packets (hosts, switch ports, links, pipelines).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_packet(const Packet& pkt) = 0;
};

}  // namespace p4s::net
