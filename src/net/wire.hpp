// Byte-level header serialization (network byte order, real layouts, real
// IPv4 header checksum). The P4 switch's programmable parser consumes these
// bytes, so header extraction in the pipeline is genuine parsing rather
// than struct copying. Payload bytes are virtual (zeros are implied by
// total_len) and never emitted.
//
// Frames start with an Ethernet II header (as every P4 parser's start
// state expects): MAC addresses are synthesized deterministically from
// the IP endpoints (locally-administered prefix 02:00 + the address),
// EtherType 0x0800.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/packet.hpp"

namespace p4s::net {

inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// Largest QUIC header the codec emits (the fixed-shape long header;
/// short headers are 13 bytes). Serialized after the UDP header when a
/// packet carries one — the observable part of a QUIC packet.
inline constexpr std::size_t kMaxQuicHeaderBytes = 27;
/// Short (1-RTT) header: flags + 8-byte DCID + 4-byte packet number.
inline constexpr std::size_t kQuicShortHeaderBytes = 13;

/// Maximum serialized header size we ever produce (Ethernet II + IPv4
/// at its maximum IHL of 15 words + largest L4 header + QUIC long
/// header). The simulator's own packets carry no options (IHL 5), but
/// packets parsed from real-world captures may, and those must survive
/// a re-serialization.
inline constexpr std::size_t kMaxHeaderBytes =
    kEthernetHeaderBytes + 60 + 20 + kMaxQuicHeaderBytes;

/// Deterministic MAC for an IPv4 address (02:00:aa:bb:cc:dd), written
/// into `out` (6 bytes).
void mac_for(Ipv4Address addr, std::span<std::uint8_t> out);

/// Serialize IPv4 + L4 headers of `pkt` into `out` (must hold at least
/// kMaxHeaderBytes), plus the QUIC header when pkt.has_quic — the
/// encrypted frames behind it are never emitted. Returns the number of
/// bytes written. Computes and embeds the IPv4 header checksum.
std::size_t serialize_headers(const Packet& pkt, std::span<std::uint8_t> out);

/// Inverse of serialize_headers. Returns nullopt if the buffer is
/// truncated, the version is not 4, the checksum fails, or the protocol is
/// unknown. IPv4 headers with options (IHL > 5) are accepted: the checksum
/// is verified over the full IHL and the option bytes are skipped (their
/// contents are not retained — the value type records only the IHL, and a
/// re-serialization pads the options region with End-of-Option-List
/// zeros). The result has uid == 0 (uids are simulator metadata, not wire
/// data).
std::optional<Packet> parse_headers(std::span<const std::uint8_t> in);

/// RFC 1071 ones'-complement checksum over a byte span.
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

/// Rewrite the TTL of a serialized frame (Ethernet + IPv4 + L4) in place,
/// updating the IPv4 header checksum incrementally (RFC 1624 eqn. 3).
/// Lets the TAP reuse one serialization across the core switch's ingress
/// and egress mirror copies, which differ only in the decremented TTL.
void patch_ttl(std::span<std::uint8_t> frame, std::uint8_t new_ttl);

}  // namespace p4s::net
