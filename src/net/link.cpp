#include "net/link.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace p4s::net {

SimTime Link::transmit(const Packet& pkt) {
  assert(rate_bps_ > 0);
  const SimTime tx = units::transmission_time(pkt.wire_bytes(), rate_bps_);
  const SimTime done = sim_.now() + tx;
  const bool lost =
      loss_rate_ > 0.0 && sim_.rng().chance(loss_rate_);
  if (lost) {
    ++lost_pkts_;
  } else if (sink_ != nullptr) {
    sim_.at(done + delay_, [this, pkt]() {
      ++delivered_pkts_;
      sink_->on_packet(pkt);
    });
  }
  return done;
}

void OutputPort::enqueue(const Packet& pkt) {
  if (!transmitting_) {
    // Link idle: the packet still formally passes through the queue so
    // enqueue/dequeue statistics stay consistent.
    if (queue_.try_enqueue(pkt, sim_.now())) {
      auto entry = queue_.dequeue();
      assert(entry.has_value());
      start_transmission(std::move(*entry));
    }
    return;
  }
  queue_.try_enqueue(pkt, sim_.now());  // drop-tail on failure
}

void OutputPort::start_transmission(DropTailQueue::Entry entry) {
  transmitting_ = true;
  const SimTime done = link_.transmit(entry.pkt);
  const SimTime queued_at = entry.enqueued_at;
  sim_.at(done, [this, pkt = std::move(entry.pkt), queued_at]() {
    for (const auto& hook : egress_hooks_) hook(pkt, sim_.now() - queued_at);
    on_transmit_done();
  });
}

void OutputPort::on_transmit_done() {
  transmitting_ = false;
  if (auto next = queue_.dequeue()) {
    start_transmission(std::move(*next));
  }
}

}  // namespace p4s::net
