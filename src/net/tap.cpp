#include "net/tap.hpp"

namespace p4s::net {

void OpticalTapPair::attach(LegacySwitch& sw, OutputPort& monitored_port) {
  sw.set_ingress_hook(
      [this](const Packet& pkt) { mirror(pkt, MirrorPoint::kIngress); });
  monitored_port.set_egress_hook(
      [this](const Packet& pkt, SimTime /*queue_delay*/) {
        mirror(pkt, MirrorPoint::kEgress);
      });
}

void OpticalTapPair::mirror(const Packet& pkt, MirrorPoint point) {
  ++mirrored_pkts_;
  sim_.after(tap_latency_, [this, pkt, point]() {
    sink_.on_mirrored(pkt, point);
  });
}

}  // namespace p4s::net
