#include "net/tap.hpp"

#include <cassert>

namespace p4s::net {

void MirrorSink::on_mirrored_bytes(std::span<const std::uint8_t> bytes,
                                   MirrorPoint point, std::uint32_t wire_len) {
  // Byte-parsing sinks override this; for packet-level sinks synthesize
  // a Packet that carries only what survives the boundary (the wire
  // length) and take the usual path.
  Packet pkt;
  pkt.ip.total_len =
      wire_len > kEthernetHeaderBytes
          ? static_cast<std::uint16_t>(wire_len - kEthernetHeaderBytes)
          : 0;
  on_mirrored_wire(pkt, bytes, point);
}

void OpticalTapPair::attach(LegacySwitch& sw, OutputPort& monitored_port) {
  // Multicast hooks: several TAP pairs may observe the same switch/port
  // (one per monitored site in the fabric) without displacing each other.
  sw.add_ingress_hook(
      [this](const Packet& pkt) { mirror(pkt, MirrorPoint::kIngress); });
  monitored_port.add_egress_hook(
      [this](const Packet& pkt, SimTime /*queue_delay*/) {
        mirror(pkt, MirrorPoint::kEgress);
      });
}

void OpticalTapPair::mirror(const Packet& pkt, MirrorPoint point) {
  ++mirrored_pkts_;
  if (boundary_ != nullptr) {
    // Parallel fabric: the copy crosses to a pipeline shard instead of
    // being scheduled on this timeline. Frames leave in mirror order at
    // a constant latency, so `at` is non-decreasing as BoundaryQueue
    // requires; nothing is scheduled here, which is what keeps the main
    // timeline's event order identical to the serial run.
    MirrorFrame frame;
    frame.at = sim_.now() + tap_latency_;
    frame.seq = boundary_seq_++;
    frame.wire_len = kEthernetHeaderBytes + pkt.ip.total_len;
    frame.point = point;
    frame.len = serialize_shared(pkt, frame.bytes);
    boundary_->push(frame);
    return;
  }
  PendingMirror& slot = ring_push();
  slot.pkt = pkt;
  slot.point = point;
  slot.len = serialize_shared(pkt, slot.bytes);
  // The delay is the same for every copy, so deliveries pop in FIFO
  // order; the event captures only `this` (fits std::function's inline
  // storage — no per-copy closure allocation).
  sim_.after(tap_latency_, [this]() { deliver_front(); });
}

void OpticalTapPair::deliver_front() {
  assert(ring_count_ > 0);
  PendingMirror& front = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  --ring_count_;
  // `front` stays valid during delivery: pushes from inside the sink go
  // to other slots (the ring only grows when full, and we just freed one).
  sink_.on_mirrored_wire(
      front.pkt, std::span<const std::uint8_t>(front.bytes.data(), front.len),
      front.point);
}

std::uint8_t OpticalTapPair::serialize_shared(
    const Packet& pkt, std::array<std::uint8_t, kMaxHeaderBytes>& out) {
  if (pkt.uid == 0) {
    // No identity to share under (synthetic/test packets): serialize.
    return static_cast<std::uint8_t>(serialize_headers(pkt, out));
  }
  CacheEntry& entry = cache_[pkt.uid & (kCacheSlots - 1)];
  if (entry.uid == pkt.uid) {
    // Same packet seen at the other TAP. The core switch only ever
    // decremented the TTL in between; patch it instead of re-serializing.
    if (entry.ttl != pkt.ip.ttl) {
      patch_ttl(std::span<std::uint8_t>(entry.bytes.data(), entry.len),
                pkt.ip.ttl);
      entry.ttl = pkt.ip.ttl;
    }
    ++cache_hits_;
  } else {
    entry.uid = pkt.uid;
    entry.ttl = pkt.ip.ttl;
    entry.len = static_cast<std::uint8_t>(serialize_headers(pkt, entry.bytes));
  }
  std::copy_n(entry.bytes.data(), entry.len, out.data());
  return entry.len;
}

OpticalTapPair::PendingMirror& OpticalTapPair::ring_push() {
  if (ring_count_ == ring_.size()) ring_grow();
  PendingMirror& slot = ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)];
  ++ring_count_;
  return slot;
}

void OpticalTapPair::ring_grow() {
  std::vector<PendingMirror> bigger(ring_.empty() ? 64 : ring_.size() * 2);
  for (std::size_t i = 0; i < ring_count_; ++i) {
    bigger[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
  }
  ring_ = std::move(bigger);
  ring_head_ = 0;
}

}  // namespace p4s::net
