#include "net/wire.hpp"

#include <cstring>

namespace p4s::net {

namespace {

void put_u8(std::span<std::uint8_t> out, std::size_t& pos, std::uint8_t v) {
  out[pos++] = v;
}
void put_u16(std::span<std::uint8_t> out, std::size_t& pos, std::uint16_t v) {
  out[pos++] = static_cast<std::uint8_t>(v >> 8);
  out[pos++] = static_cast<std::uint8_t>(v & 0xFF);
}
void put_u32(std::span<std::uint8_t> out, std::size_t& pos, std::uint32_t v) {
  out[pos++] = static_cast<std::uint8_t>(v >> 24);
  out[pos++] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[pos++] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[pos++] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint8_t get_u8(std::span<const std::uint8_t> in, std::size_t& pos) {
  return in[pos++];
}
std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint16_t v = static_cast<std::uint16_t>(in[pos] << 8) | in[pos + 1];
  pos += 2;
  return v;
}
std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint32_t v = (static_cast<std::uint32_t>(in[pos]) << 24) |
                    (static_cast<std::uint32_t>(in[pos + 1]) << 16) |
                    (static_cast<std::uint32_t>(in[pos + 2]) << 8) |
                    in[pos + 3];
  pos += 4;
  return v;
}

void put_u64(std::span<std::uint8_t> out, std::size_t& pos, std::uint64_t v) {
  put_u32(out, pos, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, pos, static_cast<std::uint32_t>(v));
}
std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t& pos) {
  const std::uint64_t hi = get_u32(in, pos);
  return (hi << 32) | get_u32(in, pos);
}

// QUIC first-byte bits (RFC 9000 §17): form, fixed, spin, and the
// packet-number-length code (always 3 here — 4-byte packet numbers).
constexpr std::uint8_t kQuicFormBit = 0x80;
constexpr std::uint8_t kQuicFixedBit = 0x40;
constexpr std::uint8_t kQuicSpinBit = 0x20;
constexpr std::uint8_t kQuicPnLen4 = 0x03;
constexpr std::uint8_t kQuicCidLen = 8;

// Best-effort QUIC header extraction from the UDP payload region. The
// fixed bit plus our fixed shape (8-byte CIDs, 4-byte packet numbers)
// gate acceptance; anything else is opaque UDP payload, not an error —
// real demultiplexers are exactly this tolerant (RFC 9443-style
// heuristics), and captures may carry arbitrary payloads.
bool parse_quic(std::span<const std::uint8_t> in, std::size_t pos,
                Packet& pkt) {
  if (in.size() < pos + 13) return false;
  const std::uint8_t byte0 = in[pos++];
  if ((byte0 & kQuicFixedBit) == 0) return false;
  QuicHeader q;
  if ((byte0 & kQuicFormBit) != 0) {
    if (in.size() < pos + 26) return false;
    q.long_form = true;
    q.type = (byte0 >> 4) & 0x03;
    q.version = get_u32(in, pos);
    if (get_u8(in, pos) != kQuicCidLen) return false;
    q.dcid = get_u64(in, pos);
    if (get_u8(in, pos) != kQuicCidLen) return false;
    q.scid = get_u64(in, pos);
  } else {
    if ((byte0 & kQuicPnLen4) != kQuicPnLen4) return false;
    q.spin = (byte0 & kQuicSpinBit) != 0;
    q.dcid = get_u64(in, pos);
  }
  q.packet_number = get_u32(in, pos);
  pkt.quic = q;
  pkt.has_quic = true;
  return true;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

void patch_ttl(std::span<std::uint8_t> frame, std::uint8_t new_ttl) {
  const std::size_t ip = kEthernetHeaderBytes;
  const std::uint8_t old_ttl = frame[ip + 8];
  if (old_ttl == new_ttl) return;
  // The checksum covers 16-bit words; TTL shares its word with the
  // protocol byte. HC' = ~(~HC + ~m + m') per RFC 1624.
  const std::uint16_t old_word =
      static_cast<std::uint16_t>((old_ttl << 8) | frame[ip + 9]);
  const std::uint16_t new_word =
      static_cast<std::uint16_t>((new_ttl << 8) | frame[ip + 9]);
  frame[ip + 8] = new_ttl;
  const std::uint16_t old_csum =
      static_cast<std::uint16_t>((frame[ip + 10] << 8) | frame[ip + 11]);
  std::uint32_t sum = static_cast<std::uint16_t>(~old_csum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const std::uint16_t csum = static_cast<std::uint16_t>(~sum);
  frame[ip + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[ip + 11] = static_cast<std::uint8_t>(csum & 0xFF);
}

void mac_for(Ipv4Address addr, std::span<std::uint8_t> out) {
  out[0] = 0x02;  // locally administered, unicast
  out[1] = 0x00;
  out[2] = static_cast<std::uint8_t>(addr >> 24);
  out[3] = static_cast<std::uint8_t>(addr >> 16);
  out[4] = static_cast<std::uint8_t>(addr >> 8);
  out[5] = static_cast<std::uint8_t>(addr);
}

std::size_t serialize_headers(const Packet& pkt,
                              std::span<std::uint8_t> out) {
  std::size_t pos = 0;
  // Ethernet II: dst MAC, src MAC, EtherType.
  mac_for(pkt.ip.dst, out.subspan(pos, 6));
  pos += 6;
  mac_for(pkt.ip.src, out.subspan(pos, 6));
  pos += 6;
  put_u16(out, pos, kEtherTypeIpv4);
  const std::size_t ip_start = pos;
  const Ipv4Header& ip = pkt.ip;
  put_u8(out, pos, static_cast<std::uint8_t>((ip.version << 4) | ip.ihl));
  put_u8(out, pos, ip.dscp);
  put_u16(out, pos, ip.total_len);
  put_u16(out, pos, ip.id);
  put_u16(out, pos, 0);  // flags + fragment offset: never fragmented here
  put_u8(out, pos, ip.ttl);
  put_u8(out, pos, ip.protocol);
  const std::size_t checksum_pos = pos;
  put_u16(out, pos, 0);  // checksum placeholder
  put_u32(out, pos, ip.src);
  put_u32(out, pos, ip.dst);
  // Options region (IHL > 5, only for packets parsed from real-world
  // captures): option *contents* are not modelled, so pad with
  // End-of-Option-List zeros. Written before the checksum, which covers
  // the full IHL.
  for (std::size_t i = 20; i < ip.header_bytes(); ++i) put_u8(out, pos, 0);
  const std::uint16_t csum =
      internet_checksum(out.subspan(ip_start, ip.header_bytes()));
  out[checksum_pos] = static_cast<std::uint8_t>(csum >> 8);
  out[checksum_pos + 1] = static_cast<std::uint8_t>(csum & 0xFF);

  if (pkt.is_tcp()) {
    const TcpHeader& t = pkt.tcp();
    put_u16(out, pos, t.src_port);
    put_u16(out, pos, t.dst_port);
    put_u32(out, pos, t.seq);
    put_u32(out, pos, t.ack);
    put_u8(out, pos, static_cast<std::uint8_t>(t.data_offset << 4));
    put_u8(out, pos, t.flags);
    put_u16(out, pos, static_cast<std::uint16_t>(t.window >> kWindowShift));
    put_u16(out, pos, 0);  // TCP checksum not modelled (payload is virtual)
    put_u16(out, pos, 0);  // urgent pointer
  } else if (pkt.is_udp()) {
    const UdpHeader& u = pkt.udp();
    put_u16(out, pos, u.src_port);
    put_u16(out, pos, u.dst_port);
    put_u16(out, pos, u.length);
    put_u16(out, pos, 0);  // UDP checksum optional in IPv4
    if (pkt.has_quic) {
      // The QUIC header is the only observable slice of the UDP
      // payload; the encrypted frames behind it stay virtual.
      const QuicHeader& q = pkt.quic;
      if (q.long_form) {
        put_u8(out, pos,
               static_cast<std::uint8_t>(kQuicFormBit | kQuicFixedBit |
                                         ((q.type & 0x03) << 4) |
                                         kQuicPnLen4));
        put_u32(out, pos, q.version);
        put_u8(out, pos, kQuicCidLen);
        put_u64(out, pos, q.dcid);
        put_u8(out, pos, kQuicCidLen);
        put_u64(out, pos, q.scid);
      } else {
        put_u8(out, pos,
               static_cast<std::uint8_t>(kQuicFixedBit |
                                         (q.spin ? kQuicSpinBit : 0) |
                                         kQuicPnLen4));
        put_u64(out, pos, q.dcid);
      }
      put_u32(out, pos, q.packet_number);
    }
  } else {
    const IcmpHeader& ic = pkt.icmp();
    put_u8(out, pos, ic.type);
    put_u8(out, pos, ic.code);
    put_u16(out, pos, 0);  // ICMP checksum not modelled
    put_u16(out, pos, ic.ident);
    put_u16(out, pos, ic.seq);
  }
  return pos;
}

std::optional<Packet> parse_headers(std::span<const std::uint8_t> in) {
  if (in.size() < kEthernetHeaderBytes + 20) return std::nullopt;
  std::size_t pos = 12;  // skip MACs
  if (get_u16(in, pos) != kEtherTypeIpv4) return std::nullopt;
  in = in.subspan(kEthernetHeaderBytes);
  pos = 0;
  Packet pkt;
  const std::uint8_t ver_ihl = get_u8(in, pos);
  pkt.ip.version = ver_ihl >> 4;
  pkt.ip.ihl = ver_ihl & 0x0F;
  if (pkt.ip.version != 4 || pkt.ip.ihl < 5) return std::nullopt;
  if (in.size() < pkt.ip.header_bytes()) return std::nullopt;
  pkt.ip.dscp = get_u8(in, pos);
  pkt.ip.total_len = get_u16(in, pos);
  pkt.ip.id = get_u16(in, pos);
  (void)get_u16(in, pos);  // flags/fragment
  pkt.ip.ttl = get_u8(in, pos);
  pkt.ip.protocol = get_u8(in, pos);
  (void)get_u16(in, pos);  // checksum (verified over the whole header below)
  pkt.ip.src = get_u32(in, pos);
  pkt.ip.dst = get_u32(in, pos);
  if (internet_checksum(in.subspan(0, pkt.ip.header_bytes())) != 0) {
    return std::nullopt;  // ones'-complement sum over a valid header is 0
  }
  pos = pkt.ip.header_bytes();

  switch (static_cast<Protocol>(pkt.ip.protocol)) {
    case Protocol::kTcp: {
      if (in.size() < pos + 20) return std::nullopt;
      TcpHeader t;
      t.src_port = get_u16(in, pos);
      t.dst_port = get_u16(in, pos);
      t.seq = get_u32(in, pos);
      t.ack = get_u32(in, pos);
      t.data_offset = get_u8(in, pos) >> 4;
      t.flags = get_u8(in, pos);
      t.window = static_cast<std::uint32_t>(get_u16(in, pos)) << kWindowShift;
      (void)get_u16(in, pos);  // checksum
      (void)get_u16(in, pos);  // urgent
      pkt.l4 = t;
      break;
    }
    case Protocol::kUdp: {
      if (in.size() < pos + 8) return std::nullopt;
      UdpHeader u;
      u.src_port = get_u16(in, pos);
      u.dst_port = get_u16(in, pos);
      u.length = get_u16(in, pos);
      (void)get_u16(in, pos);
      pkt.l4 = u;
      parse_quic(in, pos, pkt);  // best effort; failure is plain UDP
      break;
    }
    case Protocol::kIcmp: {
      if (in.size() < pos + 8) return std::nullopt;
      IcmpHeader ic;
      ic.type = get_u8(in, pos);
      ic.code = get_u8(in, pos);
      (void)get_u16(in, pos);
      ic.ident = get_u16(in, pos);
      ic.seq = get_u16(in, pos);
      pkt.l4 = ic;
      break;
    }
    default:
      return std::nullopt;
  }
  return pkt;
}

}  // namespace p4s::net
