// End host (DTN or perfSONAR node): owns an IP address, sends packets via
// its uplink port, and demultiplexes arrivals to bound protocol/port
// handlers. Includes the kernel-style ICMP echo responder so ping-like
// active tests work against any host.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

class Host : public PacketSink {
 public:
  Host(sim::Simulation& sim, std::string name, Ipv4Address ip)
      : sim_(sim), name_(std::move(name)), ip_(ip) {}

  void attach_uplink(OutputPort& port) { uplink_ = &port; }

  /// Send a packet: stamps the per-host IPv4 identification counter and
  /// enqueues on the uplink. The caller fills all other header fields.
  void send(Packet pkt);

  using Handler = std::function<void(const Packet&)>;

  /// Bind a handler for packets with the given protocol and destination
  /// port (for ICMP the "port" is the echo ident). Replaces any existing
  /// binding.
  void bind(Protocol proto, std::uint16_t port, Handler handler);
  void unbind(Protocol proto, std::uint16_t port);

  void on_packet(const Packet& pkt) override;

  Ipv4Address ip() const { return ip_; }
  const std::string& name() const { return name_; }
  sim::Simulation& simulation() { return sim_; }

  std::uint64_t sent_pkts() const { return sent_pkts_; }
  std::uint64_t received_pkts() const { return received_pkts_; }

  /// Pick an ephemeral source port (deterministic, never repeats within a
  /// run until wrap).
  std::uint16_t allocate_port();

 private:
  static std::uint64_t key(Protocol proto, std::uint16_t port) {
    return (static_cast<std::uint64_t>(static_cast<std::uint8_t>(proto))
            << 16) |
           port;
  }

  sim::Simulation& sim_;
  std::string name_;
  Ipv4Address ip_;
  OutputPort* uplink_ = nullptr;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  std::uint16_t ip_id_ = 0;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint64_t sent_pkts_ = 0;
  std::uint64_t received_pkts_ = 0;
};

}  // namespace p4s::net
