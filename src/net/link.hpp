// Unidirectional point-to-point link (bandwidth + propagation delay) and
// the output port that feeds it through a drop-tail queue.
//
// OutputPort is the unit the paper's queue monitor observes: a packet's
// time "inside the core switch" is the interval from its enqueue on the
// port to the end of its serialization onto the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

class Link {
 public:
  /// `bits_per_second` must be > 0. The sink may be set after construction
  /// (topology wiring is two-phase).
  Link(sim::Simulation& sim, std::uint64_t bits_per_second, SimTime delay)
      : sim_(sim), rate_bps_(bits_per_second), delay_(delay) {}

  void set_sink(PacketSink& sink) { sink_ = &sink; }

  /// Change the link rate at run time (mmWave blockage model). Takes
  /// effect for subsequent transmissions.
  void set_rate(std::uint64_t bits_per_second) { rate_bps_ = bits_per_second; }
  std::uint64_t rate_bps() const { return rate_bps_; }
  SimTime delay() const { return delay_; }

  /// Drop probability applied per transmission (network-impairment hook,
  /// Fig. 12 "network-limited" case). Default 0.
  void set_loss_rate(double p) { loss_rate_ = p; }
  double loss_rate() const { return loss_rate_; }

  /// Begin serializing `pkt` now; returns the time serialization finishes.
  /// The caller (OutputPort) guarantees one transmission at a time.
  /// Delivery to the sink happens at completion + propagation delay unless
  /// the loss gate fires.
  SimTime transmit(const Packet& pkt);

  std::uint64_t delivered_pkts() const { return delivered_pkts_; }
  std::uint64_t lost_pkts() const { return lost_pkts_; }

 private:
  sim::Simulation& sim_;
  std::uint64_t rate_bps_;
  SimTime delay_;
  double loss_rate_ = 0.0;
  PacketSink* sink_ = nullptr;
  std::uint64_t delivered_pkts_ = 0;
  std::uint64_t lost_pkts_ = 0;
};

/// Queue + transmitter attached to a Link. PacketSink-compatible so a
/// switch fabric or host stack can push packets into it directly.
class OutputPort : public PacketSink {
 public:
  OutputPort(sim::Simulation& sim, std::uint64_t queue_capacity_bytes,
             Link& link)
      : sim_(sim), queue_(queue_capacity_bytes), link_(link) {}

  void on_packet(const Packet& pkt) override { enqueue(pkt); }

  void enqueue(const Packet& pkt);

  const DropTailQueue& queue() const { return queue_; }

  /// Fired when a packet finishes serialization onto the wire; arguments
  /// are the packet and the queuing delay it experienced (enqueue ->
  /// serialization end). This is where the egress TAP attaches.
  void set_egress_hook(std::function<void(const Packet&, SimTime)> hook) {
    egress_hooks_.clear();
    add_egress_hook(std::move(hook));
  }

  /// Multicast variant: several TAPs can observe the same port (one per
  /// monitored site in the fabric). Hooks fire in attachment order.
  void add_egress_hook(std::function<void(const Packet&, SimTime)> hook) {
    if (hook) egress_hooks_.push_back(std::move(hook));
  }

  Link& link() { return link_; }

 private:
  void start_transmission(DropTailQueue::Entry entry);
  void on_transmit_done();

  sim::Simulation& sim_;
  DropTailQueue queue_;
  Link& link_;
  bool transmitting_ = false;
  std::vector<std::function<void(const Packet&, SimTime)>> egress_hooks_;
};

}  // namespace p4s::net
