#include "net/switch.hpp"

#include "util/logging.hpp"

namespace p4s::net {

std::size_t LegacySwitch::add_port(OutputPort& port) {
  ports_.push_back(&port);
  return ports_.size() - 1;
}

void LegacySwitch::route(Ipv4Address dst, std::size_t port_index) {
  fib_[dst] = port_index;
}

void LegacySwitch::set_default_route(std::size_t port_index) {
  default_port_ = port_index;
}

void LegacySwitch::unroute(Ipv4Address dst) { fib_.erase(dst); }

void LegacySwitch::on_packet(const Packet& pkt) {
  for (const auto& hook : ingress_hooks_) hook(pkt);

  Packet fwd = pkt;
  if (fwd.ip.ttl <= 1) {
    // TTL expires in transit (RFC 1812): notify the sender if we have a
    // router address to speak from.
    ++ttl_expired_pkts_;
    if (address_ != 0) send_time_exceeded(pkt);
    return;
  }
  --fwd.ip.ttl;

  std::size_t out = default_port_;
  if (auto it = fib_.find(fwd.ip.dst); it != fib_.end()) out = it->second;
  if (out == kNoPort || out >= ports_.size()) {
    ++unroutable_pkts_;
    P4S_DEBUG() << name_ << ": no route for " << to_string(fwd.ip.dst);
    return;
  }
  ++forwarded_pkts_;
  ports_[out]->enqueue(fwd);
}

void LegacySwitch::send_time_exceeded(const Packet& original) {
  if (original.is_icmp() && original.icmp().type == 11) {
    return;  // never generate ICMP errors about ICMP errors
  }
  // The reply carries the original probe's identity (ident/seq for ICMP
  // probes, the IP id otherwise) so the tracerouting host can correlate;
  // the real encoding embeds the original header in the payload, which
  // amounts to the same information.
  std::uint16_t ident = original.ip.id;
  std::uint16_t seq = 0;
  if (original.is_icmp()) {
    ident = original.icmp().ident;
    seq = original.icmp().seq;
  } else if (original.is_udp()) {
    ident = original.udp().src_port;
  } else if (original.is_tcp()) {
    ident = original.tcp().src_port;
  }
  Packet reply = make_icmp_packet(address_, original.ip.src,
                                  /*type=*/11, ident, seq,
                                  /*payload=*/28);
  reply.icmp().code = 0;  // TTL exceeded in transit

  // Route the error through our own FIB.
  std::size_t out = default_port_;
  if (auto it = fib_.find(reply.ip.dst); it != fib_.end()) out = it->second;
  if (out == kNoPort || out >= ports_.size()) return;
  ports_[out]->enqueue(reply);
}

}  // namespace p4s::net
