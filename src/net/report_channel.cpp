#include "net/report_channel.hpp"

#include <algorithm>

namespace p4s::net {

ReportChannel::ReportChannel(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config), rng_(config.seed) {
  if (config_.max_chunk_bytes == 0) config_.max_chunk_bytes = 1;
}

void ReportChannel::connect() {
  if (connected_) return;
  connected_ = true;
  ++stats_.connects;
  if (!buffer_.empty()) schedule_pump(0);
}

bool ReportChannel::send(std::string_view bytes) {
  if (!connected_ || bytes.empty() ||
      buffered_bytes_ + bytes.size() > config_.send_buffer_bytes) {
    ++stats_.sends_rejected;
    return false;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  buffered_bytes_ += bytes.size();
  stats_.bytes_accepted += bytes.size();
  schedule_pump(0);
  return true;
}

void ReportChannel::reset() {
  ++stats_.resets;
  stats_.bytes_lost += buffered_bytes_;
  buffer_.clear();
  buffered_bytes_ = 0;
  // In-flight deliveries from this connection are now stale; they account
  // their own bytes as lost when they fire and see the new epoch.
  ++epoch_;
  if (!connected_) return;
  connected_ = false;
  for (const auto& handler : disconnect_handlers_) handler();
}

void ReportChannel::stall(SimTime duration) {
  ++stats_.stalls;
  stalled_until_ = std::max(stalled_until_, sim_.now() + duration);
}

void ReportChannel::schedule_pump(SimTime delay) {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  sim_.after(delay, [this]() {
    pump_scheduled_ = false;
    pump();
  });
}

void ReportChannel::pump() {
  // The pump re-validates state each firing instead of carrying stale
  // assumptions across resets: a reset empties the buffer, so a pump
  // scheduled before it simply finds nothing to do.
  while (connected_ && !buffer_.empty()) {
    const SimTime now = sim_.now();
    if (now < stalled_until_) {
      schedule_pump(stalled_until_ - now);
      return;
    }
    if (config_.drain_bps > 0 && now < next_tx_at_) {
      schedule_pump(next_tx_at_ - now);
      return;
    }
    std::uint64_t size = config_.random_chunking
                             ? 1 + rng_.next_below(config_.max_chunk_bytes)
                             : config_.max_chunk_bytes;
    size = std::min<std::uint64_t>(size, buffered_bytes_);
    std::string chunk(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(size));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(size));
    buffered_bytes_ -= size;
    sim_.after(config_.latency,
               [this, chunk = std::move(chunk), e = epoch_]() {
                 if (e != epoch_) {  // connection was reset mid-flight
                   stats_.bytes_lost += chunk.size();
                   return;
                 }
                 stats_.bytes_delivered += chunk.size();
                 ++stats_.chunks_delivered;
                 if (receiver_) receiver_(chunk);
               });
    if (config_.drain_bps > 0) {
      next_tx_at_ = std::max(next_tx_at_, now) +
                    units::transmission_time(size, config_.drain_bps);
    }
  }
}

}  // namespace p4s::net
