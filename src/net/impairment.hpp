// Network impairments used by the use-case experiments:
//  * RandomLossGate — probabilistic drop on a path (Fig. 12, network-
//    limited flow via 0.01% induced loss).
//  * MmWaveLink — line-of-sight blockage model for the data-center mmWave
//    use case (Figs. 13-14): during a blockage window the link's effective
//    rate collapses by orders of magnitude (gray failure), inflating
//    packet inter-arrival times; an RSSI observable with noise and
//    transition ramps feeds the RSSI-based baseline detector.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

/// Drops packets with probability `loss_rate` before handing them to the
/// wrapped sink. Deterministic given the simulation seed.
class RandomLossGate : public PacketSink {
 public:
  RandomLossGate(sim::Simulation& sim, PacketSink& next, double loss_rate)
      : sim_(sim), next_(next), loss_rate_(loss_rate) {}

  void set_loss_rate(double p) { loss_rate_ = p; }

  void on_packet(const Packet& pkt) override {
    if (loss_rate_ > 0.0 && sim_.rng().chance(loss_rate_)) {
      ++dropped_;
      return;
    }
    ++passed_;
    next_.on_packet(pkt);
  }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t passed() const { return passed_; }

 private:
  sim::Simulation& sim_;
  PacketSink& next_;
  double loss_rate_;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

/// Controls a Link to emulate a 60 GHz point-to-point hop with LOS
/// blockage. While blocked the link runs at nominal_rate / degradation
/// (PHY retries still trickle frames through, which is exactly what makes
/// the IAT signature of Fig. 13 observable).
class MmWaveLink {
 public:
  struct Config {
    std::uint64_t nominal_rate_bps = 0;  // taken from the link if 0
    double degradation_factor = 500.0;   // rate divisor during blockage
    double blocked_loss_rate = 0.05;     // extra frame loss while blocked
    double clear_rssi_dbm = -42.0;
    double blocked_rssi_dbm = -78.0;
    double rssi_noise_dbm = 1.5;         // uniform +/- noise
    SimTime rssi_ramp = units::milliseconds(20);  // transition duration
  };

  MmWaveLink(sim::Simulation& sim, Link& link, Config config);
  MmWaveLink(sim::Simulation& sim, Link& link)
      : MmWaveLink(sim, link, Config{}) {}

  /// Schedule a blockage window [start, start+duration).
  void schedule_blockage(SimTime start, SimTime duration);

  bool blocked() const { return blocked_; }

  /// Instantaneous RSSI observable (with deterministic noise), as an
  /// off-the-shelf radio would report it. Ramps between the clear and
  /// blocked levels over `rssi_ramp` around each transition.
  double rssi_dbm();

  const Config& config() const { return config_; }

 private:
  void set_blocked(bool blocked);

  sim::Simulation& sim_;
  Link& link_;
  Config config_;
  bool blocked_ = false;
  SimTime last_transition_ = 0;
};

}  // namespace p4s::net
