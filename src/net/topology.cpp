#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace p4s::net {

Host& Network::add_host(std::string name, Ipv4Address ip) {
  hosts_.push_back(std::make_unique<Host>(sim_, std::move(name), ip));
  return *hosts_.back();
}

LegacySwitch& Network::add_switch(std::string name) {
  switches_.push_back(std::make_unique<LegacySwitch>(std::move(name)));
  return *switches_.back();
}

Network::Duplex Network::make_duplex(PacketSink& a, PacketSink& b,
                                     const LinkSpec& spec) {
  Duplex d;
  links_.push_back(std::make_unique<Link>(sim_, spec.bits_per_second,
                                          spec.one_way_delay));
  d.forward_link = links_.back().get();
  d.forward_link->set_sink(b);
  ports_.push_back(std::make_unique<OutputPort>(
      sim_, spec.queue_bytes_forward, *d.forward_link));
  d.forward = ports_.back().get();

  links_.push_back(std::make_unique<Link>(sim_, spec.bits_per_second,
                                          spec.one_way_delay));
  d.reverse_link = links_.back().get();
  d.reverse_link->set_sink(a);
  ports_.push_back(std::make_unique<OutputPort>(
      sim_, spec.queue_bytes_reverse, *d.reverse_link));
  d.reverse = ports_.back().get();
  return d;
}

Network::Duplex Network::connect(Host& host, LegacySwitch& sw,
                                 const LinkSpec& spec) {
  Duplex d = make_duplex(host, sw, spec);
  host.attach_uplink(*d.forward);
  const std::size_t idx = sw.add_port(*d.reverse);
  sw.route(host.ip(), idx);
  return d;
}

Network::Duplex Network::connect(LegacySwitch& a, LegacySwitch& b,
                                 const LinkSpec& spec) {
  Duplex d = make_duplex(a, b, spec);
  a.add_port(*d.forward);
  b.add_port(*d.reverse);
  return d;
}

PaperTopology make_paper_topology(Network& network,
                                  const PaperTopologyConfig& config) {
  PaperTopology topo;
  topo.network = &network;
  topo.config = config;

  std::uint64_t core_buffer = config.core_buffer_bytes;
  if (core_buffer == 0) core_buffer = config.bdp_bytes_at_max_rtt();

  // Delay budget: host access hops contribute 5 us each way, the
  // inter-switch hop 500 us each way; the external access hop absorbs the
  // remainder of the configured base RTT.
  constexpr SimTime kHostDelay = units::microseconds(5);
  constexpr SimTime kInterSwitchDelay = units::microseconds(500);

  topo.core_switch = &network.add_switch("core-switch");
  topo.wan_switch = &network.add_switch("wan-switch");
  topo.core_switch->set_address(addrs::kCoreSwitch);
  topo.wan_switch->set_address(addrs::kWanSwitch);

  topo.dtn_internal =
      &network.add_host("dtn-internal", addrs::kDtnInternal);
  topo.psonar_internal =
      &network.add_host("psonar-internal", addrs::kPsonarInternal);

  const Network::LinkSpec access_spec{
      config.access_bps, kHostDelay, config.access_buffer_bytes,
      config.access_buffer_bytes};
  network.connect(*topo.dtn_internal, *topo.core_switch, access_spec);
  network.connect(*topo.psonar_internal, *topo.core_switch, access_spec);

  const Network::LinkSpec bottleneck_spec{
      config.bottleneck_bps, kInterSwitchDelay, core_buffer,
      config.access_buffer_bytes};
  Network::Duplex bottleneck =
      network.connect(*topo.core_switch, *topo.wan_switch, bottleneck_spec);
  topo.bottleneck_port = bottleneck.forward;
  topo.bottleneck_reverse_port = bottleneck.reverse;

  // All non-internal destinations leave the core switch via the
  // bottleneck; everything the WAN switch does not know goes back to the
  // core switch.
  topo.core_switch->set_default_route(topo.core_switch->port_count() - 1);
  topo.wan_switch->set_default_route(topo.wan_switch->port_count() - 1);

  for (int i = 0; i < 3; ++i) {
    const SimTime rtt = config.rtt[static_cast<std::size_t>(i)];
    const SimTime fixed = 2 * (kHostDelay + kInterSwitchDelay + kHostDelay);
    if (rtt <= fixed) {
      throw std::invalid_argument(
          "PaperTopologyConfig: RTT too small for the fixed hop delays");
    }
    const SimTime ext_delay = (rtt - fixed) / 2;
    const Network::LinkSpec ext_spec{config.access_bps, ext_delay,
                                     config.access_buffer_bytes,
                                     config.access_buffer_bytes};
    auto& dtn = network.add_host("dtn-ext" + std::to_string(i + 1),
                                 addrs::kDtnExt[static_cast<std::size_t>(i)]);
    auto& ps = network.add_host(
        "psonar-ext" + std::to_string(i + 1),
        addrs::kPsonarExt[static_cast<std::size_t>(i)]);
    topo.ext_dtn_links[static_cast<std::size_t>(i)] =
        network.connect(dtn, *topo.wan_switch, ext_spec);
    network.connect(ps, *topo.wan_switch, ext_spec);
    topo.dtn_ext[static_cast<std::size_t>(i)] = &dtn;
    topo.psonar_ext[static_cast<std::size_t>(i)] = &ps;
  }

  return topo;
}

}  // namespace p4s::net
