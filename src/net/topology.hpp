// Topology construction.
//
// Network is the owner of all hosts, switches, links and ports; it wires
// duplex connections and installs routes. make_paper_topology() builds the
// experimental topology of Figure 8: an internal network (DTN + perfSONAR
// node) behind the monitored core switch, a 10 Gbps-class bottleneck link
// to a WAN switch, and three external networks (DTN + perfSONAR node each)
// whose base RTTs to the internal DTN are 50 / 75 / 100 ms.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/impairment.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace p4s::net {

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Host& add_host(std::string name, Ipv4Address ip);
  LegacySwitch& add_switch(std::string name);

  struct Duplex {
    OutputPort* forward = nullptr;  // a -> b direction
    OutputPort* reverse = nullptr;  // b -> a direction
    Link* forward_link = nullptr;
    Link* reverse_link = nullptr;
  };

  struct LinkSpec {
    std::uint64_t bits_per_second;
    SimTime one_way_delay;
    std::uint64_t queue_bytes_forward;
    std::uint64_t queue_bytes_reverse;
  };

  /// Connect a host to a switch. Installs the host's uplink and a route
  /// for the host's address on the switch.
  Duplex connect(Host& host, LegacySwitch& sw, const LinkSpec& spec);

  /// Connect two switches. Routes must be installed by the caller.
  Duplex connect(LegacySwitch& a, LegacySwitch& b, const LinkSpec& spec);

  sim::Simulation& simulation() { return sim_; }

 private:
  Duplex make_duplex(PacketSink& a, PacketSink& b, const LinkSpec& spec);

  sim::Simulation& sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<LegacySwitch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<OutputPort>> ports_;
};

struct PaperTopologyConfig {
  /// Bottleneck (core switch <-> WAN switch) rate. The paper uses 10 Gbps;
  /// the default here is a 1 Gbps scaled run — shapes are preserved because
  /// buffers are configured in BDP units (see DESIGN.md §2).
  std::uint64_t bottleneck_bps = units::gbps(1);
  /// Access link rate for all hosts (fast enough to never be the
  /// bottleneck).
  std::uint64_t access_bps = units::gbps(4);
  /// Base RTTs from the internal DTN to the three external DTNs.
  std::array<SimTime, 3> rtt = {units::milliseconds(50),
                                units::milliseconds(75),
                                units::milliseconds(100)};
  /// Core switch buffer on the bottleneck port. 0 -> one BDP at the
  /// largest configured RTT (the Science DMZ guideline cited in §5.4.1).
  std::uint64_t core_buffer_bytes = 0;
  /// Buffers everywhere else (never the constraint in the experiments).
  std::uint64_t access_buffer_bytes = units::mebibytes(64);

  std::uint64_t bdp_bytes_at_max_rtt() const {
    return units::bdp_bytes(bottleneck_bps, rtt[2]);
  }
};

/// The built Figure-8 topology. Non-owning pointers into the Network.
struct PaperTopology {
  Network* network = nullptr;
  Host* dtn_internal = nullptr;
  Host* psonar_internal = nullptr;
  std::array<Host*, 3> dtn_ext{};
  std::array<Host*, 3> psonar_ext{};
  LegacySwitch* core_switch = nullptr;  // monitored by the TAP pair
  LegacySwitch* wan_switch = nullptr;
  /// Core switch's output port onto the bottleneck link — the queue whose
  /// occupancy the paper's Figures 9 and 11 report.
  OutputPort* bottleneck_port = nullptr;
  /// Reverse direction (WAN -> core), carrying the ACK stream.
  OutputPort* bottleneck_reverse_port = nullptr;
  /// Access links WAN switch <-> external DTNs (forward = toward the
  /// DTN), for per-destination impairment injection (Fig. 12).
  std::array<Network::Duplex, 3> ext_dtn_links{};
  PaperTopologyConfig config;
};

/// Build the Figure-8 topology into `network`.
PaperTopology make_paper_topology(Network& network,
                                  const PaperTopologyConfig& config = {});

/// Well-known addresses used by the paper topology.
namespace addrs {
inline constexpr Ipv4Address kCoreSwitch = ipv4(10, 0, 0, 1);
inline constexpr Ipv4Address kWanSwitch = ipv4(10, 254, 0, 1);
inline constexpr Ipv4Address kDtnInternal = ipv4(10, 0, 0, 10);
inline constexpr Ipv4Address kPsonarInternal = ipv4(10, 0, 0, 20);
inline constexpr std::array<Ipv4Address, 3> kDtnExt = {
    ipv4(10, 1, 0, 10), ipv4(10, 2, 0, 10), ipv4(10, 3, 0, 10)};
inline constexpr std::array<Ipv4Address, 3> kPsonarExt = {
    ipv4(10, 1, 0, 20), ipv4(10, 2, 0, 20), ipv4(10, 3, 0, 20)};
}  // namespace addrs

}  // namespace p4s::net
