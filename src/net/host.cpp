#include "net/host.hpp"

#include "util/logging.hpp"

namespace p4s::net {

void Host::send(Packet pkt) {
  pkt.ip.id = ip_id_++;
  ++sent_pkts_;
  if (uplink_ == nullptr) {
    P4S_WARN() << name_ << ": send with no uplink attached";
    return;
  }
  uplink_->enqueue(pkt);
}

void Host::bind(Protocol proto, std::uint16_t port, Handler handler) {
  handlers_[key(proto, port)] = std::move(handler);
}

void Host::unbind(Protocol proto, std::uint16_t port) {
  handlers_.erase(key(proto, port));
}

void Host::on_packet(const Packet& pkt) {
  ++received_pkts_;
  if (pkt.ip.dst != ip_) {
    P4S_DEBUG() << name_ << ": dropping packet for " << to_string(pkt.ip.dst);
    return;
  }

  if (pkt.is_icmp()) {
    const IcmpHeader& icmp = pkt.icmp();
    if (icmp.type == 8) {  // echo request -> kernel auto-reply
      Packet reply = make_icmp_packet(ip_, pkt.ip.src, /*type=*/0,
                                      icmp.ident, icmp.seq,
                                      pkt.payload_bytes());
      send(std::move(reply));
      return;
    }
    // Echo replies are dispatched to the ident's handler below.
    if (auto it = handlers_.find(key(Protocol::kIcmp, icmp.ident));
        it != handlers_.end()) {
      it->second(pkt);
    }
    return;
  }

  std::uint16_t dst_port = 0;
  Protocol proto = static_cast<Protocol>(pkt.ip.protocol);
  if (pkt.is_tcp()) {
    dst_port = pkt.tcp().dst_port;
  } else if (pkt.is_udp()) {
    dst_port = pkt.udp().dst_port;
  }
  if (auto it = handlers_.find(key(proto, dst_port)); it != handlers_.end()) {
    it->second(pkt);
  } else {
    P4S_DEBUG() << name_ << ": no listener on port " << dst_port;
  }
}

std::uint16_t Host::allocate_port() {
  if (next_ephemeral_ == 0) next_ephemeral_ = 49152;  // wrapped
  return next_ephemeral_++;
}

}  // namespace p4s::net
