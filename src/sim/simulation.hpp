// Simulation: owns the event queue and the root PRNG, and is handed by
// reference to every component. One Simulation == one deterministic run.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "util/units.hpp"

namespace p4s::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return events_.now(); }
  EventQueue& events() { return events_; }
  Rng& rng() { return rng_; }

  EventHandle at(SimTime t, EventFn fn) {
    return events_.schedule_at(t, std::move(fn));
  }
  EventHandle after(SimTime delay, EventFn fn) {
    return events_.schedule_in(delay, std::move(fn));
  }

  /// Schedule `fn` at `start` and then every `period` until it returns
  /// false or the run ends.
  void every(SimTime start, SimTime period, std::function<bool()> fn);

  void run_until(SimTime until) { events_.run_until(until); }
  void run() { events_.run(); }

  /// Next default TCP destination port (iperf3 convention: 5201, 5202,
  /// ...). Per-run state — every Simulation draws the identical sequence
  /// regardless of what other runs exist in the process. (A process-
  /// global counter here once forced tests to pin ports explicitly.)
  std::uint16_t allocate_default_port() { return next_default_port_++; }

 private:
  void schedule_tick(SimTime t, SimTime period,
                     std::shared_ptr<std::function<bool()>> fn);

  EventQueue events_;
  Rng rng_;
  std::uint16_t next_default_port_ = 5201;
};

}  // namespace p4s::sim
