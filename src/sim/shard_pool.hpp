// Worker pool for parallel sharded discrete-event execution.
//
// The fabric splits the simulation into one main timeline (topology,
// TCP, control planes, transport — everything that interacts) plus N
// independent pipeline shards (one per monitored switch: the mirror
// stream through the P4 program). Each shard owns its own event queue
// and RNG stream and is advanced by exactly one worker thread under
// conservative lookahead: the main timeline publishes a monotonically
// increasing *grant* per shard — "every boundary event with timestamp
// <= grant has been handed over; execute up to there" — derived from
// the TAP propagation latency (a mirror copy taken at main time T
// cannot be delivered before T + tap_latency, so granting T-1 while the
// main clock sits at T is always safe).
//
// Workers advance their shards to the latest grant and publish a
// *watermark* ("executed through") back; the main timeline blocks on
// the watermark only at read barriers (a control plane about to read
// its switch's registers, an end-of-run sync). Between barriers main
// and workers run fully overlapped. Grant and watermark stores carry
// release/acquire ordering, so a barrier is also the happens-before
// edge that lets the main thread read shard-owned state race-free.
//
// Determinism: a shard's execution depends only on its boundary stream
// (ordered by (timestamp, seq) — see BoundaryQueue) and its own queue,
// never on worker count or scheduling; the `scheduling_jitter_seed`
// test knob injects random worker delays to prove exactly that.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/boundary_queue.hpp"
#include "util/units.hpp"

namespace p4s::sim {

class ShardPool {
 public:
  /// One shard of the parallel fabric. advance_to() is only ever called
  /// from the shard's owning worker thread; has_boundary_backlog() may
  /// be read from any thread (it is a wake-up hint, not a count).
  class Shard {
   public:
    virtual ~Shard() = default;
    /// Drain the boundary inbox and execute every event with timestamp
    /// <= `grant` (events at exactly `grant` DO run), merging boundary
    /// deliveries against local events by (timestamp, seq).
    virtual void advance_to(SimTime grant) = 0;
    /// True while boundary messages are waiting to be drained.
    virtual bool has_boundary_backlog() const = 0;
  };

  struct Config {
    std::size_t workers = 1;
    /// Test-only chaos knob: seed for per-worker random yields/naps
    /// between pump iterations. Outputs must be invariant under it —
    /// the parallel-determinism battery runs with it set.
    std::uint64_t scheduling_jitter_seed = 0;
  };

  explicit ShardPool(Config config) : config_(config) {}
  ~ShardPool() { stop(); }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Register a shard (before start()). Returns its shard id; shards
  /// are assigned to workers round-robin by id.
  std::size_t add_shard(Shard& shard);

  /// Launch the worker threads. Idempotent.
  void start();

  /// Stop and join all workers. Idempotent; called by the destructor.
  void stop();

  // ---- Producer (main-timeline) protocol ------------------------------
  /// Raise a shard's grant (monotonic: smaller values are ignored) and
  /// wake its worker.
  void publish_grant(std::size_t shard, SimTime grant);
  /// Raise every shard's grant.
  void publish_grant_all(SimTime grant);
  /// Wake a shard's worker after pushing boundary messages for it.
  void kick(std::size_t shard);
  /// Grant `grant` and block until the shard's watermark reaches it —
  /// after this returns, reading the shard's state from the calling
  /// thread is race-free until the next grant is published.
  void barrier(std::size_t shard, SimTime grant);
  void barrier_all(SimTime grant);

  /// True once a worker died on an exception; barrier()/kick() rethrow
  /// the stored reason as std::runtime_error at the next call.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// Rethrow a worker failure (no-op while healthy) — producers waiting
  /// on a drained inbox call this so a dead worker can't hang them.
  void throw_if_failed() const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t worker_count() const { return workers_.size(); }
  SimTime watermark(std::size_t shard) const {
    return shards_[shard]->watermark.load(std::memory_order_acquire);
  }
  /// Barrier waits that actually had to block (contention telemetry).
  std::uint64_t barrier_waits() const {
    return barrier_waits_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    explicit ShardState(Shard& s) : shard(&s) {}
    Shard* shard;
    std::size_t worker = 0;
    alignas(kCacheLineBytes) std::atomic<SimTime> grant{0};
    alignas(kCacheLineBytes) std::atomic<SimTime> watermark{0};
  };
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> parked{false};
    std::vector<std::size_t> owned;  // shard ids, fixed after start()
  };

  void worker_main(std::size_t index);
  bool pump_one(ShardState& s);
  void wake_worker(std::size_t worker_index);
  void notify_main();
  void record_failure(const char* what);

  Config config_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Main-thread barrier wait channel.
  std::mutex main_mu_;
  std::condition_variable main_cv_;
  std::atomic<bool> main_waiting_{false};
  std::atomic<std::uint64_t> barrier_waits_{0};

  std::atomic<bool> failed_{false};
  std::string failure_;  // guarded by main_mu_
};

}  // namespace p4s::sim
