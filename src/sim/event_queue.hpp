// Discrete-event scheduler.
//
// An explicit vector-backed binary min-heap keyed by (time, sequence)
// gives O(log n) schedule/pop with deterministic FIFO ordering for
// simultaneous events — determinism matters because every experiment in
// EXPERIMENTS.md must be exactly reproducible.
//
// Event records live in a slab (a vector of slots recycled through a free
// list), so steady-state scheduling performs no heap allocation: no
// shared_ptr control block per event, and the slot's std::function reuses
// its small-object storage across events (hot-path callbacks capture a
// pointer or two and fit inline). Handles address their slot by index
// plus a generation counter, which makes stale handles (slot since
// recycled) inert without any per-event ownership.
//
// Cancellation is lazy: a cancelled event's heap entry stays put and is
// skipped when popped, keeping cancel() O(1) (TCP cancels its RTO timer
// on every ACK, so this path is hot). The slot itself is reclaimed when
// its heap entry surfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/units.hpp"

namespace p4s::sim {

using EventFn = std::function<void()>;

class EventQueue;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Copies refer to the same underlying event. Handles
/// remain safe to use after the event fired, after cancel(), and after
/// the queue itself was destroyed (they simply report !pending()).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly
  /// and on inert handles.
  inline void cancel();

  /// True if the handle refers to an event that is still pending.
  inline bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::weak_ptr<void> alive,
              std::uint32_t slot, std::uint32_t generation)
      : queue_(queue),
        alive_(std::move(alive)),
        slot_(slot),
        generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::weak_ptr<void> alive_;  // expires with the queue
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  // Handles capture the queue's address, so the queue must not move.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()). Events at
  /// equal times fire in scheduling order.
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` to run `delay` ns from now.
  EventHandle schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or `until` is reached. Events
  /// scheduled exactly at `until` DO run. Afterwards now() == until
  /// whenever until > now() on entry — the clock advances to the horizon
  /// even if the queue drained early (callers treat run_until(t) as
  /// "simulate up to t", so wall-clock-style periods keep their length
  /// regardless of event density; pinned by EventQueue.RunUntil* tests).
  void run_until(SimTime until);

  /// Run until the queue drains completely.
  void run();

  /// Execute at most one event; returns false if none were pending.
  bool step();

  /// Heap entries not yet reclaimed. Cancellation is lazy, so a
  /// cancelled event still counts until its entry is popped.
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  /// High-water mark of pending_events() over the queue's lifetime (the
  /// "peak heap events" figure in BENCH_*.json).
  std::size_t peak_pending_events() const { return peak_live_; }

 private:
  friend class EventHandle;

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;  // bumped on reclaim; stale handles miss
    bool cancelled = false;
    bool pending = false;
  };
  // Key fields are denormalized into the heap entry so sift compares
  // touch one contiguous array instead of chasing slot indices.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_entry();           // remove heap_[0], restore heap order
  void reclaim(std::uint32_t slot_index);
  bool pop_and_run();

  bool handle_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slab_.size() && slab_[slot].generation == generation &&
           slab_[slot].pending && !slab_[slot].cancelled;
  }
  void handle_cancel(std::uint32_t slot, std::uint32_t generation) {
    if (slot < slab_.size() && slab_[slot].generation == generation &&
        slab_[slot].pending) {
      slab_[slot].cancelled = true;
    }
  }

  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  // Liveness token handed to handles (one allocation per queue, not per
  // event); expires when the queue is destroyed.
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_live_ = 0;
};

inline void EventHandle::cancel() {
  if (queue_ == nullptr || alive_.expired()) return;
  queue_->handle_cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  if (queue_ == nullptr || alive_.expired()) return false;
  return queue_->handle_pending(slot_, generation_);
}

}  // namespace p4s::sim
