// Discrete-event scheduler.
//
// A binary heap keyed by (time, sequence) gives O(log n) schedule/pop with
// deterministic FIFO ordering for simultaneous events — determinism matters
// because every experiment in EXPERIMENTS.md must be exactly reproducible.
// Cancellation is lazy: a cancelled event stays in the heap but is skipped
// when popped, which keeps cancel() O(1) (TCP cancels its RTO timer on
// every ACK, so this path is hot).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace p4s::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Copies share the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// on inert handles.
  void cancel() {
    if (auto p = state_.lock()) *p = true;
  }

  /// True if the handle refers to an event that is still pending.
  bool pending() const {
    auto p = state_.lock();
    return p && !*p;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> state) : state_(std::move(state)) {}
  std::weak_ptr<bool> state_;  // *state == true -> cancelled
};

class EventQueue {
 public:
  /// Current simulated time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()). Events at equal
  /// times fire in scheduling order.
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` to run `delay` ns from now.
  EventHandle schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or `until` is reached. Events
  /// scheduled exactly at `until` DO run; afterwards now() == until if the
  /// horizon was hit, else the time of the last event.
  void run_until(SimTime until);

  /// Run until the queue drains completely.
  void run();

  /// Execute at most one event; returns false if none were pending.
  bool step();

  /// Heap entries not yet collected. Cancellation is lazy, so a cancelled
  /// event still counts until its slot is popped.
  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // heap entries not yet popped
};

}  // namespace p4s::sim
