#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace p4s::sim {

EventHandle EventQueue::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  std::uint32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Slot& slot = slab_[slot_index];
  slot.fn = std::move(fn);
  slot.cancelled = false;
  slot.pending = true;

  heap_.push_back(HeapEntry{at, next_seq_++, slot_index});
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_live_) peak_live_ = heap_.size();
  return EventHandle{this, alive_, slot_index, slot.generation};
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry entry = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], entry)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

void EventQueue::pop_entry() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::reclaim(std::uint32_t slot_index) {
  Slot& slot = slab_[slot_index];
  slot.fn = nullptr;  // release captures promptly
  slot.pending = false;
  slot.cancelled = false;
  ++slot.generation;  // stale handles become inert
  free_slots_.push_back(slot_index);
}

bool EventQueue::pop_and_run() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    pop_entry();
    Slot& slot = slab_[top.slot];
    if (slot.cancelled) {
      reclaim(top.slot);
      continue;  // lazily dropped
    }
    assert(top.time >= now_);
    now_ = top.time;
    // Move the callback out and reclaim before running: handles report
    // !pending() while the event executes, and the callback may schedule
    // into (and reuse) the slot it just vacated.
    EventFn fn = std::move(slot.fn);
    reclaim(top.slot);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

bool EventQueue::step() { return pop_and_run(); }

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty()) {
    // Reclaim cancelled events without advancing time, even past the
    // horizon — cancelled entries carry no semantics, only storage.
    const HeapEntry top = heap_.front();
    if (slab_[top.slot].cancelled) {
      pop_entry();
      reclaim(top.slot);
      continue;
    }
    if (top.time > until) break;
    pop_and_run();
  }
  // Advance to the horizon even when the queue drained early: see the
  // contract on the declaration.
  if (now_ < until) now_ = until;
}

void EventQueue::run() {
  while (pop_and_run()) {
  }
}

}  // namespace p4s::sim
