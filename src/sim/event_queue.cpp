#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace p4s::sim {

EventHandle EventQueue::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  heap_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
  ++live_;
  return handle;
}

bool EventQueue::pop_and_run() {
  while (!heap_.empty()) {
    // priority_queue::top is const; the event is moved out via const_cast,
    // which is safe because pop() immediately removes the slot.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    --live_;
    if (*ev.cancelled) {
      continue;  // lazily dropped
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    *ev.cancelled = true;  // mark fired so handles report !pending
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

bool EventQueue::step() { return pop_and_run(); }

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty()) {
    // Skip cancelled events without advancing time.
    if (*heap_.top().cancelled) {
      heap_.pop();
      --live_;
      continue;
    }
    if (heap_.top().time > until) break;
    pop_and_run();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run() {
  while (pop_and_run()) {
  }
}

}  // namespace p4s::sim
