#include "sim/simulation.hpp"

#include <cmath>

namespace p4s::sim {

double Rng::next_exponential(double mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

void Simulation::every(SimTime start, SimTime period,
                       std::function<bool()> fn) {
  schedule_tick(start, period,
                std::make_shared<std::function<bool()>>(std::move(fn)));
}

void Simulation::schedule_tick(SimTime t, SimTime period,
                               std::shared_ptr<std::function<bool()>> fn) {
  at(t, [this, period, fn]() {
    if ((*fn)()) schedule_tick(now() + period, period, fn);
  });
}

}  // namespace p4s::sim
