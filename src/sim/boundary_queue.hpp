// Lock-free SPSC ring for cross-shard boundary events.
//
// The parallel fabric hands events across shard boundaries (main
// timeline -> per-switch pipeline shard) through one of these per
// boundary: exactly one producer thread pushes and exactly one consumer
// thread pops, so a fixed-capacity ring with two monotonically
// increasing cursors needs no locks and no CAS loops — each side owns
// one cursor and reads the other with acquire ordering.
//
// Messages must be pushed in non-decreasing timestamp order (the
// producer is itself a discrete-event loop, so this is free); the
// consumer then sees a totally ordered stream and can merge it against
// its local event queue by (timestamp, boundary seq) without a barrier.
//
// Capacity is fixed at construction (power of two). try_push fails when
// the ring is full; the producer decides how to make room (the fabric
// publishes a fresh lookahead grant and waits for the consumer to
// drain — see ShardPool).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace p4s::sim {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLineBytes =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLineBytes = 64;
#endif

template <typename T>
class BoundaryQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit BoundaryQueue(std::size_t capacity = 8192) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  BoundaryQueue(const BoundaryQueue&) = delete;
  BoundaryQueue& operator=(const BoundaryQueue&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    ring_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pointer to the oldest message, or nullptr when
  /// empty. Valid until the matching pop().
  T* front() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &ring_[head & mask_];
  }

  /// Consumer side: release the slot returned by front().
  void pop() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Producer-side view of the backlog (exact for the producer since
  /// only the consumer can shrink it concurrently).
  std::size_t size_approx() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    head_.load(std::memory_order_acquire));
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  // Producer-owned cursor + its cached view of the consumer's, on their
  // own cache line so pushes never ping-pong with pops.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace p4s::sim
