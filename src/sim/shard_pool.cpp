#include "sim/shard_pool.hpp"

#include <chrono>
#include <stdexcept>

#include "sim/random.hpp"

namespace p4s::sim {

std::size_t ShardPool::add_shard(Shard& shard) {
  if (started_) {
    throw std::logic_error("ShardPool: add_shard after start()");
  }
  shards_.push_back(std::make_unique<ShardState>(shard));
  return shards_.size() - 1;
}

void ShardPool::start() {
  if (started_) return;
  started_ = true;
  const std::size_t n =
      std::min(std::max<std::size_t>(config_.workers, 1), shards_.size());
  for (std::size_t w = 0; w < n; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t w = i % n;
    shards_[i]->worker = w;
    workers_[w]->owned.push_back(i);
  }
  for (std::size_t w = 0; w < n; ++w) {
    workers_[w]->thread = std::thread([this, w]() { worker_main(w); });
  }
}

void ShardPool::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  workers_.clear();
  started_ = false;
  stop_.store(false, std::memory_order_relaxed);
}

void ShardPool::publish_grant(std::size_t shard, SimTime grant) {
  ShardState& s = *shards_[shard];
  if (s.grant.load(std::memory_order_relaxed) >= grant) return;
  s.grant.store(grant, std::memory_order_seq_cst);
  wake_worker(s.worker);
}

void ShardPool::publish_grant_all(SimTime grant) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    publish_grant(i, grant);
  }
}

void ShardPool::kick(std::size_t shard) { wake_worker(shards_[shard]->worker); }

void ShardPool::barrier(std::size_t shard, SimTime grant) {
  if (!started_) return;
  publish_grant(shard, grant);
  ShardState& s = *shards_[shard];
  // Fast path: the worker usually keeps up (it had the whole inter-read
  // window to drain); spin briefly before arming the blocking channel.
  for (int spin = 0; spin < 256; ++spin) {
    if (s.watermark.load(std::memory_order_acquire) >= grant) return;
    throw_if_failed();
    std::this_thread::yield();
  }
  barrier_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(main_mu_);
  main_waiting_.store(true, std::memory_order_seq_cst);
  wake_worker(s.worker);  // in case it parked between publish and here
  main_cv_.wait(lock, [&]() {
    return failed_.load(std::memory_order_acquire) ||
           s.watermark.load(std::memory_order_acquire) >= grant;
  });
  main_waiting_.store(false, std::memory_order_seq_cst);
  lock.unlock();
  throw_if_failed();
}

void ShardPool::barrier_all(SimTime grant) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    barrier(i, grant);
  }
}

void ShardPool::throw_if_failed() const {
  if (!failed_.load(std::memory_order_acquire)) return;
  throw std::runtime_error("ShardPool: worker failed: " + failure_);
}

void ShardPool::record_failure(const char* what) {
  {
    std::lock_guard<std::mutex> lock(main_mu_);
    if (!failed_.load(std::memory_order_relaxed)) failure_ = what;
    failed_.store(true, std::memory_order_release);
    main_cv_.notify_all();
  }
}

void ShardPool::wake_worker(std::size_t worker_index) {
  if (workers_.empty()) return;
  Worker& w = *workers_[worker_index];
  if (!w.parked.load(std::memory_order_seq_cst)) return;
  std::lock_guard<std::mutex> lock(w.mu);
  w.cv.notify_all();
}

void ShardPool::notify_main() {
  if (!main_waiting_.load(std::memory_order_seq_cst)) return;
  std::lock_guard<std::mutex> lock(main_mu_);
  main_cv_.notify_all();
}

bool ShardPool::pump_one(ShardState& s) {
  const SimTime grant = s.grant.load(std::memory_order_seq_cst);
  const bool behind = s.watermark.load(std::memory_order_relaxed) < grant;
  if (!behind && !s.shard->has_boundary_backlog()) return false;
  s.shard->advance_to(grant);
  if (behind) {
    s.watermark.store(grant, std::memory_order_release);
    notify_main();
  }
  return true;
}

void ShardPool::worker_main(std::size_t index) {
  Worker& me = *workers_[index];
  Rng jitter(config_.scheduling_jitter_seed + index * 0x9E3779B9u + 1);
  try {
    while (!stop_.load(std::memory_order_seq_cst)) {
      bool progress = false;
      for (const std::size_t id : me.owned) {
        progress = pump_one(*shards_[id]) || progress;
        if (config_.scheduling_jitter_seed != 0) {
          // Scheduling chaos for the determinism battery: stall at
          // random points so shard interleavings vary wildly across
          // runs while outputs must not.
          const double r = jitter.next_double();
          if (r < 0.25) {
            std::this_thread::yield();
          } else if (r < 0.30) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                1 + static_cast<int>(jitter.next_double() * 200)));
          }
        }
      }
      if (progress) continue;
      std::unique_lock<std::mutex> lock(me.mu);
      me.parked.store(true, std::memory_order_seq_cst);
      // Re-check after raising the flag: a producer that published work
      // before reading `parked` is now guaranteed visible here.
      bool work = stop_.load(std::memory_order_seq_cst);
      for (const std::size_t id : me.owned) {
        const ShardState& s = *shards_[id];
        work = work ||
               s.watermark.load(std::memory_order_relaxed) <
                   s.grant.load(std::memory_order_seq_cst) ||
               s.shard->has_boundary_backlog();
      }
      if (!work) me.cv.wait(lock);
      me.parked.store(false, std::memory_order_seq_cst);
    }
  } catch (const std::exception& e) {
    me.parked.store(false, std::memory_order_seq_cst);
    record_failure(e.what());
  } catch (...) {
    me.parked.store(false, std::memory_order_seq_cst);
    record_failure("unknown exception");
  }
}

}  // namespace p4s::sim
