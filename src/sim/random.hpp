// Deterministic PRNG for the simulator: xoshiro256** (public domain
// algorithm by Blackman & Vigna), seeded via splitmix64. We avoid
// std::mt19937 to guarantee identical streams across standard libraries —
// reproduction runs must not depend on the toolchain.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace p4s::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill the state; never all-zero.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrival processes in workload generators).
  double next_exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace p4s::sim
