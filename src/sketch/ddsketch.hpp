// DDSketch-style quantile sketch with relative-error buckets.
//
// Buckets are geometric: value v lands in bucket ceil(log_gamma(v)) with
// gamma = (1 + alpha) / (1 - alpha), so reporting the bucket's
// log-midpoint guarantees |estimate - true| <= alpha * true for every
// quantile — the property that makes p50/p95/p99 trustworthy no matter
// how skewed the distribution is ("DDSketch: a fast and fully-mergeable
// quantile sketch with relative-error guarantees", Masson et al.).
//
// Memory is bounded by max_bins: when the live bucket span would exceed
// it, the lowest buckets collapse into one (counted), trading accuracy
// at the *bottom* of the distribution — the tail quantiles monitoring
// cares about keep the guarantee. Sketches with identical parameters
// merge exactly (bucket-wise addition), and serialization is canonical
// (zero-trimmed), so merge order never changes the bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/json.hpp"

namespace p4s::sketch {

struct DdSketchConfig {
  /// Relative accuracy target, 0 < alpha < 1.
  double alpha = 0.01;
  /// Maximum live buckets before the low end collapses.
  std::size_t max_bins = 2048;
  /// Values below this are counted in a dedicated "zero" bucket and
  /// report as 0 (nanosecond metrics: anything under 1 ns is noise).
  double min_value = 1.0;

  friend bool operator==(const DdSketchConfig& a, const DdSketchConfig& b) {
    return a.alpha == b.alpha && a.max_bins == b.max_bins &&
           a.min_value == b.min_value;
  }
};

class DdSketch {
 public:
  /// Throws std::invalid_argument on malformed parameters.
  explicit DdSketch(DdSketchConfig config);
  DdSketch() : DdSketch(DdSketchConfig{}) {}

  const DdSketchConfig& config() const { return config_; }
  double alpha() const { return config_.alpha; }

  void add(double value, std::uint64_t count = 1);

  /// Quantile estimate. Within the relative-error bound for samples that
  /// landed in non-collapsed buckets; 0 for an empty sketch.
  double quantile(double q) const;

  std::uint64_t total() const { return total_; }
  std::uint64_t zero_count() const { return zero_; }
  /// Live (allocated) bucket count — the memory footprint.
  std::size_t bucket_count() const { return counts_.size(); }
  /// Samples folded into the lowest bucket by the max_bins bound; their
  /// values are over-reported (never the tail's).
  std::uint64_t collapsed() const { return collapsed_; }

  /// Bucket-wise addition. Throws std::invalid_argument unless `other`
  /// was built with an identical config.
  void merge(const DdSketch& other);

  void clear();

  /// Canonical (zero-trimmed) serialization: a pure function of the
  /// bucket multiset, independent of insertion or merge order.
  util::Json to_json() const;
  static DdSketch from_json(const util::Json& doc);

 private:
  int index_of(double value) const;
  double value_of(int index) const;
  void add_bucket(int index, std::uint64_t count);

  DdSketchConfig config_;
  double gamma_ = 0.0;
  double inv_log_gamma_ = 0.0;
  int offset_ = 0;  // bucket index of counts_[0]
  std::vector<std::uint64_t> counts_;
  std::uint64_t zero_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t collapsed_ = 0;
};

}  // namespace p4s::sketch
