// Fixed-bin histogram primitive for data-plane metric summarization.
//
// A P4 target can maintain a histogram in one register array: the bin
// index is computed from the packet's measured value (a range-match
// table in hardware, arithmetic here) and the register cell is
// incremented. Unlike the per-flow slot design this summarizes
// arbitrarily many flows in fixed space — the approach of "Enhancements
// to P4TG: Histogram-Based RTT Monitoring in the Data Plane".
//
// Bins cover [min, max) in either linear or logarithmic widths; values
// below min / at-or-above max land in dedicated underflow / overflow
// counters, never dropped. Histograms with identical configs merge by
// bin-wise addition (exact, associative), and serialize to a canonical
// JSON document so control-plane exports and golden tests are
// deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace p4s::sketch {

struct HistogramConfig {
  enum class Scale : std::uint8_t { kLinear = 0, kLog = 1 };
  Scale scale = Scale::kLog;
  /// Lower edge of the first bin. Must be > 0 for log scale.
  double min = 1.0e3;  // 1 us in nanoseconds
  /// Upper edge of the last bin (exclusive). Must be > min.
  double max = 1.0e9;  // 1 s
  std::size_t bins = 64;

  friend bool operator==(const HistogramConfig& a, const HistogramConfig& b) {
    return a.scale == b.scale && a.min == b.min && a.max == b.max &&
           a.bins == b.bins;
  }
};

const char* to_string(HistogramConfig::Scale scale);
/// Inverse of to_string ("linear" / "log"); throws std::invalid_argument
/// on unknown names.
HistogramConfig::Scale histogram_scale_from_name(const std::string& name);

class Histogram {
 public:
  /// Throws std::invalid_argument on a malformed config (min >= max,
  /// zero bins, non-positive min with log scale, non-finite edges).
  explicit Histogram(HistogramConfig config);
  Histogram() : Histogram(HistogramConfig{}) {}

  const HistogramConfig& config() const { return config_; }

  /// Record `count` observations of `value`. NaN counts as underflow
  /// (it is not >= min), so no sample is ever silently lost.
  void add(double value, std::uint64_t count = 1);

  /// Bin index for an in-range value (min <= value < max).
  std::size_t bin_index(double value) const;

  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Total observations including underflow and overflow.
  std::uint64_t total() const { return total_; }

  /// Quantile estimate by rank walk with intra-bin interpolation
  /// (geometric for log bins, linear otherwise). Underflow samples
  /// report as min, overflow samples as max — the edges bound what a
  /// binned summary can claim. Returns 0 for an empty histogram.
  double quantile(double q) const;

  /// Bin-wise addition. Throws std::invalid_argument unless `other` has
  /// an identical config. Exact and associative.
  void merge(const Histogram& other);

  void clear();

  /// Canonical serialization: config + per-bin counts + under/overflow.
  /// Identical histograms (as multisets of binned samples) dump to
  /// identical bytes regardless of insertion or merge order.
  util::Json to_json() const;
  /// Inverse of to_json; throws std::invalid_argument on malformed docs.
  static Histogram from_json(const util::Json& doc);

 private:
  HistogramConfig config_;
  double log_min_ = 0.0;
  double inv_log_width_ = 0.0;  // bins / (log(max) - log(min))
  double inv_lin_width_ = 0.0;  // bins / (max - min)
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace p4s::sketch
