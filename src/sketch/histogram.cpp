#include "sketch/histogram.hpp"

#include <cmath>
#include <stdexcept>

namespace p4s::sketch {

const char* to_string(HistogramConfig::Scale scale) {
  switch (scale) {
    case HistogramConfig::Scale::kLinear: return "linear";
    case HistogramConfig::Scale::kLog: return "log";
  }
  return "?";
}

HistogramConfig::Scale histogram_scale_from_name(const std::string& name) {
  if (name == "linear") return HistogramConfig::Scale::kLinear;
  if (name == "log") return HistogramConfig::Scale::kLog;
  throw std::invalid_argument("unknown histogram scale: " + name);
}

Histogram::Histogram(HistogramConfig config) : config_(config) {
  if (config_.bins == 0) {
    throw std::invalid_argument("histogram needs at least one bin");
  }
  if (!std::isfinite(config_.min) || !std::isfinite(config_.max) ||
      config_.min >= config_.max) {
    throw std::invalid_argument("histogram needs finite min < max");
  }
  if (config_.scale == HistogramConfig::Scale::kLog && config_.min <= 0.0) {
    throw std::invalid_argument("log histogram needs min > 0");
  }
  if (config_.scale == HistogramConfig::Scale::kLog) {
    log_min_ = std::log(config_.min);
    inv_log_width_ = static_cast<double>(config_.bins) /
                     (std::log(config_.max) - log_min_);
  } else {
    inv_lin_width_ =
        static_cast<double>(config_.bins) / (config_.max - config_.min);
  }
  counts_.assign(config_.bins, 0);
}

std::size_t Histogram::bin_index(double value) const {
  double raw = 0.0;
  if (config_.scale == HistogramConfig::Scale::kLog) {
    raw = (std::log(value) - log_min_) * inv_log_width_;
  } else {
    raw = (value - config_.min) * inv_lin_width_;
  }
  // Floating rounding at the outer edges must not escape the bin range.
  if (raw < 0.0) return 0;
  const auto bin = static_cast<std::size_t>(raw);
  return bin >= config_.bins ? config_.bins - 1 : bin;
}

void Histogram::add(double value, std::uint64_t count) {
  total_ += count;
  if (!(value >= config_.min)) {  // NaN lands here too
    underflow_ += count;
    return;
  }
  if (value >= config_.max) {
    overflow_ += count;
    return;
  }
  counts_[bin_index(value)] += count;
}

double Histogram::bin_lower(std::size_t bin) const {
  if (config_.scale == HistogramConfig::Scale::kLog) {
    return config_.min *
           std::pow(config_.max / config_.min,
                    static_cast<double>(bin) /
                        static_cast<double>(config_.bins));
  }
  return config_.min + static_cast<double>(bin) / inv_lin_width_;
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin + 1 == config_.bins ? config_.max : bin_lower(bin + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = underflow_;
  if (rank < cum) return config_.min;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    if (counts_[bin] == 0) continue;
    if (rank < cum + counts_[bin]) {
      const double frac = (static_cast<double>(rank - cum) + 0.5) /
                          static_cast<double>(counts_[bin]);
      const double lo = bin_lower(bin);
      const double hi = bin_upper(bin);
      if (config_.scale == HistogramConfig::Scale::kLog) {
        return lo * std::pow(hi / lo, frac);
      }
      return lo + frac * (hi - lo);
    }
    cum += counts_[bin];
  }
  return config_.max;  // rank fell into the overflow counter
}

void Histogram::merge(const Histogram& other) {
  if (!(config_ == other.config_)) {
    throw std::invalid_argument("histogram merge: config mismatch");
  }
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    counts_[bin] += other.counts_[bin];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::clear() {
  counts_.assign(config_.bins, 0);
  underflow_ = 0;
  overflow_ = 0;
  total_ = 0;
}

util::Json Histogram::to_json() const {
  util::Json doc = util::Json::object();
  doc["scale"] = to_string(config_.scale);
  doc["min"] = config_.min;
  doc["max"] = config_.max;
  doc["bins"] = static_cast<std::int64_t>(config_.bins);
  util::JsonArray counts;
  counts.reserve(counts_.size());
  for (const std::uint64_t c : counts_) {
    counts.emplace_back(static_cast<std::int64_t>(c));
  }
  doc["counts"] = util::Json(std::move(counts));
  doc["underflow"] = static_cast<std::int64_t>(underflow_);
  doc["overflow"] = static_cast<std::int64_t>(overflow_);
  return doc;
}

Histogram Histogram::from_json(const util::Json& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("histogram document must be an object");
  }
  try {
    HistogramConfig config;
    config.scale = histogram_scale_from_name(doc.at("scale").as_string());
    config.min = doc.at("min").as_double();
    config.max = doc.at("max").as_double();
    config.bins = static_cast<std::size_t>(doc.at("bins").as_int());
    Histogram h(config);
    const auto& counts = doc.at("counts").as_array();
    if (counts.size() != config.bins) {
      throw std::invalid_argument("histogram counts/bins mismatch");
    }
    for (std::size_t bin = 0; bin < counts.size(); ++bin) {
      const auto c = static_cast<std::uint64_t>(counts[bin].as_int());
      h.counts_[bin] = c;
      h.total_ += c;
    }
    h.underflow_ = static_cast<std::uint64_t>(doc.at("underflow").as_int());
    h.overflow_ = static_cast<std::uint64_t>(doc.at("overflow").as_int());
    h.total_ += h.underflow_ + h.overflow_;
    return h;
  } catch (const util::JsonError& e) {
    throw std::invalid_argument(std::string("malformed histogram: ") +
                                e.what());
  }
}

}  // namespace p4s::sketch
