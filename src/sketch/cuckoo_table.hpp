// Multi-stage cuckoo flow table: exact flow -> slot mapping far past the
// direct-indexed design's load limits.
//
// The paper's `slot = flow_id & mask` path aliases flows as soon as two
// long flows share the low bits; at 100k+ concurrent flows the 2048-slot
// array is mostly claimed by whichever flow hashed there first. A cuckoo
// table (two hash-selected buckets of `ways` cells each, as in P4-NIDS
// and cuckoo-filter-based P4 designs) keeps an exact match path at >90%
// load: an insert that finds both buckets full displaces a resident
// entry toward its alternate bucket along a bounded kick chain.
//
// Two properties matter for the telemetry use:
//  * Slot stability — the table maps key -> slot *value*; relocating a
//    cell between buckets carries the value unchanged, so a flow's
//    per-slot registers (bytes, RTT, IAT...) never move.
//  * Losslessness — the kick chain is planned first and committed only
//    when it ends in an empty cell; a failed insert changes nothing and
//    is counted, never silently dropping a resident flow.
//
// Idle-age eviction: when the kick chain fails, an entry idle for at
// least `idle_age` in either candidate bucket is evicted to make room
// (reported to the caller, who emits the eviction digest); fresh entries
// are never victimized.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/units.hpp"

namespace p4s::sketch {

struct CuckooConfig {
  /// Target capacity in entries; rounded up to a power-of-two bucket
  /// count times `ways`.
  std::size_t capacity = 2048;
  /// Cells per bucket (associativity), 2..8.
  std::size_t ways = 4;
  /// Bound on the displacement chain length per insert.
  std::size_t max_kicks = 32;
  /// Entries idle at least this long may be evicted under insert
  /// pressure; 0 disables aging (inserts fail instead).
  SimTime idle_age = 0;
};

class CuckooFlowTable {
 public:
  /// An entry evicted by idle aging to admit a new insert.
  struct Victim {
    std::uint32_t key = 0;
    std::uint16_t value = 0;
    SimTime last_seen = 0;
  };

  enum class InsertResult : std::uint8_t {
    kInserted = 0,
    kExists = 1,    // key already present (its last_seen was refreshed)
    kTableFull = 2  // kick chain bounded out and no aged victim
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t kick_steps = 0;
    std::uint64_t failed_inserts = 0;
    std::uint64_t aged_evictions = 0;
  };

  /// Throws std::invalid_argument on malformed config (ways outside
  /// 2..8, zero capacity or max_kicks).
  explicit CuckooFlowTable(CuckooConfig config);

  /// Lookup without touching the entry's age.
  std::optional<std::uint16_t> find(std::uint32_t key) const;

  /// Lookup + refresh last_seen (the data-path access).
  std::optional<std::uint16_t> touch(std::uint32_t key, SimTime now);

  /// Insert key -> value. On kExists the existing value is untouched (and
  /// its age refreshed). `evicted` reports the aged entry removed to make
  /// room, if any — the caller owns turning that into a digest.
  InsertResult insert(std::uint32_t key, std::uint16_t value, SimTime now,
                      std::optional<Victim>& evicted);

  /// Remove a key; returns false if absent.
  bool erase(std::uint32_t key);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cells_.size(); }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(cells_.size());
  }
  const Stats& stats() const { return stats_; }
  const CuckooConfig& config() const { return config_; }

  /// Test hook: the age of a resident key.
  std::optional<SimTime> last_seen(std::uint32_t key) const;

 private:
  struct Cell {
    std::uint32_t key = 0;
    std::uint16_t value = 0;
    SimTime last_seen = 0;
    bool used = false;
  };

  std::size_t bucket1(std::uint32_t key) const;
  std::size_t bucket2(std::uint32_t key) const;
  /// The other candidate bucket of `key`, given it sits in `bucket`.
  std::size_t alt_bucket(std::uint32_t key, std::size_t bucket) const;
  Cell* cell_of(std::uint32_t key);
  const Cell* cell_of(std::uint32_t key) const;
  /// Index of an empty cell in `bucket`, or nullopt.
  std::optional<std::size_t> empty_cell(std::size_t bucket) const;
  /// Oldest cell in either candidate bucket idle >= idle_age, or nullopt.
  std::optional<std::size_t> aged_cell(std::size_t b1, std::size_t b2,
                                       SimTime now) const;

  CuckooConfig config_;
  std::size_t bucket_mask_ = 0;
  std::vector<Cell> cells_;  // bucket-major: bucket * ways + way
  std::size_t size_ = 0;
  std::uint32_t kick_rotor_ = 0;  // deterministic victim-way rotation
  mutable Stats stats_;
};

}  // namespace p4s::sketch
