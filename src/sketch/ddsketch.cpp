#include "sketch/ddsketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p4s::sketch {

DdSketch::DdSketch(DdSketchConfig config) : config_(config) {
  if (!std::isfinite(config_.alpha) || config_.alpha <= 0.0 ||
      config_.alpha >= 1.0) {
    throw std::invalid_argument("ddsketch alpha must be in (0, 1)");
  }
  if (config_.max_bins < 2) {
    throw std::invalid_argument("ddsketch needs at least 2 bins");
  }
  if (!std::isfinite(config_.min_value) || config_.min_value <= 0.0) {
    throw std::invalid_argument("ddsketch min_value must be > 0");
  }
  gamma_ = (1.0 + config_.alpha) / (1.0 - config_.alpha);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

int DdSketch::index_of(double value) const {
  return static_cast<int>(std::ceil(std::log(value) * inv_log_gamma_));
}

double DdSketch::value_of(int index) const {
  // Log-midpoint of bucket (gamma^(i-1), gamma^i]: relative error to any
  // value in the bucket is at most alpha.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void DdSketch::add(double value, std::uint64_t count) {
  if (!(value >= config_.min_value)) {  // NaN lands here too
    zero_ += count;
    total_ += count;
    return;
  }
  add_bucket(index_of(value), count);
}

void DdSketch::add_bucket(int index, std::uint64_t count) {
  total_ += count;
  if (counts_.empty()) {
    offset_ = index;
    counts_.assign(1, 0);
  }
  if (index < offset_) {
    const auto grow = static_cast<std::size_t>(offset_ - index);
    if (counts_.size() + grow > config_.max_bins) {
      // Below the collapse floor: fold into the lowest live bucket. The
      // sample is over-reported by that bucket's value; the tail
      // quantiles keep their guarantee.
      collapsed_ += count;
      counts_.front() += count;
      return;
    }
    counts_.insert(counts_.begin(), grow, 0);
    offset_ = index;
  } else if (static_cast<std::size_t>(index - offset_) >= counts_.size()) {
    const auto span = static_cast<std::size_t>(index - offset_) + 1;
    if (span > config_.max_bins) {
      // Make room at the top: every bucket below the new window floor
      // collapses into the floor bucket.
      const int new_offset =
          index - static_cast<int>(config_.max_bins) + 1;
      const std::size_t drop = std::min(
          counts_.size(), static_cast<std::size_t>(new_offset - offset_));
      std::uint64_t folded = 0;
      for (std::size_t i = 0; i < drop; ++i) folded += counts_[i];
      counts_.erase(counts_.begin(),
                    counts_.begin() + static_cast<std::ptrdiff_t>(drop));
      offset_ += static_cast<int>(drop);
      if (counts_.empty()) {
        offset_ = new_offset;
        counts_.assign(1, 0);
      }
      collapsed_ += folded;
      counts_.front() += folded;
    }
    counts_.resize(static_cast<std::size_t>(index - offset_) + 1, 0);
  }
  counts_[static_cast<std::size_t>(index - offset_)] += count;
}

double DdSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t cum = zero_;
  if (rank < cum) return 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    if (rank < cum) return value_of(offset_ + static_cast<int>(i));
  }
  return counts_.empty()
             ? 0.0
             : value_of(offset_ + static_cast<int>(counts_.size()) - 1);
}

void DdSketch::merge(const DdSketch& other) {
  if (!(config_ == other.config_)) {
    throw std::invalid_argument("ddsketch merge: config mismatch");
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] > 0) {
      add_bucket(other.offset_ + static_cast<int>(i), other.counts_[i]);
    }
  }
  zero_ += other.zero_;
  total_ += other.zero_;
  collapsed_ += other.collapsed_;
}

void DdSketch::clear() {
  counts_.clear();
  offset_ = 0;
  zero_ = 0;
  total_ = 0;
  collapsed_ = 0;
}

util::Json DdSketch::to_json() const {
  // Trim zero buckets at both ends so the document is a pure function of
  // the bucket multiset (growth history leaves no trace).
  std::size_t lo = 0;
  std::size_t hi = counts_.size();
  while (lo < hi && counts_[lo] == 0) ++lo;
  while (hi > lo && counts_[hi - 1] == 0) --hi;

  util::Json doc = util::Json::object();
  doc["alpha"] = config_.alpha;
  doc["min_value"] = config_.min_value;
  doc["max_bins"] = static_cast<std::int64_t>(config_.max_bins);
  doc["offset"] = static_cast<std::int64_t>(
      lo < hi ? offset_ + static_cast<int>(lo) : 0);
  util::JsonArray counts;
  counts.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    counts.emplace_back(static_cast<std::int64_t>(counts_[i]));
  }
  doc["counts"] = util::Json(std::move(counts));
  doc["zero"] = static_cast<std::int64_t>(zero_);
  doc["collapsed"] = static_cast<std::int64_t>(collapsed_);
  return doc;
}

DdSketch DdSketch::from_json(const util::Json& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("ddsketch document must be an object");
  }
  try {
    DdSketchConfig config;
    config.alpha = doc.at("alpha").as_double();
    config.min_value = doc.at("min_value").as_double();
    config.max_bins = static_cast<std::size_t>(doc.at("max_bins").as_int());
    DdSketch sketch(config);
    const auto offset = static_cast<int>(doc.at("offset").as_int());
    const auto& counts = doc.at("counts").as_array();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const auto c = static_cast<std::uint64_t>(counts[i].as_int());
      if (c > 0) sketch.add_bucket(offset + static_cast<int>(i), c);
    }
    sketch.zero_ = static_cast<std::uint64_t>(doc.at("zero").as_int());
    sketch.total_ += sketch.zero_;
    // Collapsed counts are already inside the buckets; restore the
    // bookkeeping only.
    sketch.collapsed_ =
        static_cast<std::uint64_t>(doc.at("collapsed").as_int());
    return sketch;
  } catch (const util::JsonError& e) {
    throw std::invalid_argument(std::string("malformed ddsketch: ") +
                                e.what());
  }
}

}  // namespace p4s::sketch
