#include "sketch/cuckoo_table.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace p4s::sketch {

namespace {

/// 32-bit finalizer-style mixer (MurmurHash3 fmix32) — stands in for the
/// two independent CRC hash units a P4 target would provide.
std::uint32_t mix(std::uint32_t x, std::uint32_t salt) {
  x ^= salt;
  x ^= x >> 16;
  x *= 0x85EBCA6Bu;
  x ^= x >> 13;
  x *= 0xC2B2AE35u;
  x ^= x >> 16;
  return x;
}

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

CuckooFlowTable::CuckooFlowTable(CuckooConfig config) : config_(config) {
  if (config_.ways < 2 || config_.ways > 8) {
    throw std::invalid_argument("cuckoo ways must be in 2..8");
  }
  if (config_.capacity == 0) {
    throw std::invalid_argument("cuckoo capacity must be > 0");
  }
  if (config_.max_kicks == 0) {
    throw std::invalid_argument("cuckoo max_kicks must be > 0");
  }
  const std::size_t buckets = next_pow2(
      (config_.capacity + config_.ways - 1) / config_.ways);
  bucket_mask_ = buckets - 1;
  cells_.assign(buckets * config_.ways, Cell{});
}

std::size_t CuckooFlowTable::bucket1(std::uint32_t key) const {
  return mix(key, 0x9E3779B9u) & bucket_mask_;
}

std::size_t CuckooFlowTable::bucket2(std::uint32_t key) const {
  return mix(key, 0x7F4A7C15u) & bucket_mask_;
}

std::size_t CuckooFlowTable::alt_bucket(std::uint32_t key,
                                        std::size_t bucket) const {
  const std::size_t b1 = bucket1(key);
  return bucket == b1 ? bucket2(key) : b1;
}

CuckooFlowTable::Cell* CuckooFlowTable::cell_of(std::uint32_t key) {
  const auto* cell = std::as_const(*this).cell_of(key);
  return const_cast<Cell*>(cell);  // NOLINT(cppcoreguidelines-pro-type-const-cast)
}

const CuckooFlowTable::Cell* CuckooFlowTable::cell_of(
    std::uint32_t key) const {
  for (const std::size_t bucket : {bucket1(key), bucket2(key)}) {
    const std::size_t base = bucket * config_.ways;
    for (std::size_t way = 0; way < config_.ways; ++way) {
      const Cell& cell = cells_[base + way];
      if (cell.used && cell.key == key) return &cell;
    }
  }
  return nullptr;
}

std::optional<std::size_t> CuckooFlowTable::empty_cell(
    std::size_t bucket) const {
  const std::size_t base = bucket * config_.ways;
  for (std::size_t way = 0; way < config_.ways; ++way) {
    if (!cells_[base + way].used) return base + way;
  }
  return std::nullopt;
}

std::optional<std::size_t> CuckooFlowTable::aged_cell(std::size_t b1,
                                                      std::size_t b2,
                                                      SimTime now) const {
  if (config_.idle_age == 0) return std::nullopt;
  std::optional<std::size_t> oldest;
  for (const std::size_t bucket : {b1, b2}) {
    const std::size_t base = bucket * config_.ways;
    for (std::size_t way = 0; way < config_.ways; ++way) {
      const Cell& cell = cells_[base + way];
      if (!cell.used) continue;
      if (now < cell.last_seen + config_.idle_age) continue;
      if (!oldest || cell.last_seen < cells_[*oldest].last_seen) {
        oldest = base + way;
      }
    }
    if (b1 == b2) break;
  }
  return oldest;
}

std::optional<std::uint16_t> CuckooFlowTable::find(std::uint32_t key) const {
  ++stats_.lookups;
  const Cell* cell = cell_of(key);
  if (cell == nullptr) return std::nullopt;
  ++stats_.hits;
  return cell->value;
}

std::optional<std::uint16_t> CuckooFlowTable::touch(std::uint32_t key,
                                                    SimTime now) {
  ++stats_.lookups;
  Cell* cell = cell_of(key);
  if (cell == nullptr) return std::nullopt;
  ++stats_.hits;
  cell->last_seen = now;
  return cell->value;
}

std::optional<SimTime> CuckooFlowTable::last_seen(std::uint32_t key) const {
  const Cell* cell = cell_of(key);
  if (cell == nullptr) return std::nullopt;
  return cell->last_seen;
}

CuckooFlowTable::InsertResult CuckooFlowTable::insert(
    std::uint32_t key, std::uint16_t value, SimTime now,
    std::optional<Victim>& evicted) {
  evicted.reset();
  if (Cell* cell = cell_of(key)) {
    cell->last_seen = now;
    return InsertResult::kExists;
  }

  const std::size_t b1 = bucket1(key);
  const std::size_t b2 = bucket2(key);

  // Plan a displacement path ending in an empty cell; commit only on
  // success so a bounded-out chain leaves the table untouched.
  std::vector<std::size_t> path;
  std::optional<std::size_t> target;
  std::size_t bucket = b1;
  for (std::size_t kick = 0; kick <= config_.max_kicks; ++kick) {
    if (auto empty = empty_cell(bucket)) {
      target = empty;
      break;
    }
    if (bucket == b1) {
      // The second candidate bucket may have room before any kicks.
      if (auto empty = empty_cell(b2)) {
        target = empty;
        break;
      }
    }
    if (kick == config_.max_kicks) break;
    // Deterministic victim rotation; skip cells already on the path (a
    // cycle would move one cell twice and corrupt the plan).
    const std::size_t base = bucket * config_.ways;
    std::optional<std::size_t> victim;
    for (std::size_t i = 0; i < config_.ways; ++i) {
      const std::size_t candidate =
          base + (kick_rotor_ + i) % config_.ways;
      if (std::find(path.begin(), path.end(), candidate) == path.end()) {
        victim = candidate;
        break;
      }
    }
    ++kick_rotor_;
    if (!victim) break;
    path.push_back(*victim);
    ++stats_.kick_steps;
    bucket = alt_bucket(cells_[*victim].key, bucket);
  }

  if (!target) {
    // Kick chain bounded out: admit over an idle-aged entry if allowed.
    if (auto aged = aged_cell(b1, b2, now)) {
      Cell& cell = cells_[*aged];
      evicted = Victim{cell.key, cell.value, cell.last_seen};
      ++stats_.aged_evictions;
      cell = Cell{key, value, now, true};
      ++stats_.inserts;
      return InsertResult::kInserted;
    }
    ++stats_.failed_inserts;
    return InsertResult::kTableFull;
  }

  // Commit: shift path occupants toward the empty cell, back to front.
  std::size_t hole = *target;
  for (std::size_t i = path.size(); i > 0; --i) {
    cells_[hole] = cells_[path[i - 1]];
    hole = path[i - 1];
  }
  cells_[hole] = Cell{key, value, now, true};
  ++size_;
  ++stats_.inserts;
  return InsertResult::kInserted;
}

bool CuckooFlowTable::erase(std::uint32_t key) {
  Cell* cell = cell_of(key);
  if (cell == nullptr) return false;
  *cell = Cell{};
  --size_;
  return true;
}

}  // namespace p4s::sketch
