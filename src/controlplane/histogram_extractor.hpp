// Switch-wide histogram extractors: Report_v1 documents carrying the
// p50/p95/p99 quantiles and serialized bins of a HistogramEngine.
//
// Each configured histogram engine becomes one extraction timer named
// after the engine ("rtt_histogram", "queue_delay_histogram_core"...),
// registered through the same register_extractor() seam the four paper
// metrics use — so run-time rate configuration, alerting and boosting
// apply unchanged. The report's headline value is p99 in milliseconds
// (the alertable tail), and the document is annotated with p50/p95, the
// sample count and the full histogram bins for downstream dashboards.
#pragma once

#include "controlplane/control_plane.hpp"
#include "telemetry/dataplane_program.hpp"
#include "telemetry/histogram_engines.hpp"

namespace p4s::cp {

/// Register one switch-wide extractor exporting `engine`'s quantiles and
/// bins. The engine must outlive the control plane (it lives in the
/// DataPlaneProgram). Throws like register_extractor on duplicates.
void register_histogram_extractor(ControlPlane& cp,
                                  const telemetry::HistogramEngine& engine,
                                  MetricConfig config = {});

/// Register an extractor for every histogram engine the program was
/// configured with (no-op for the default, histogram-free pipeline).
void register_histogram_extractors(ControlPlane& cp,
                                   const telemetry::DataPlaneProgram& program,
                                   MetricConfig config = {});

}  // namespace p4s::cp
