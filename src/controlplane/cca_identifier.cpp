#include "controlplane/cca_identifier.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace p4s::cp {

const char* to_string(CcaClass cca) {
  switch (cca) {
    case CcaClass::kUnknown: return "unknown";
    case CcaClass::kRenoLike: return "reno-like";
    case CcaClass::kCubicLike: return "cubic-like";
    case CcaClass::kBbrLike: return "bbr-like";
  }
  return "?";
}

CcaIdentifier::CcaIdentifier(sim::Simulation& sim,
                             telemetry::DataPlaneProgram& program,
                             Config config)
    : sim_(sim), program_(program), config_(config) {}

void CcaIdentifier::start() {
  if (started_) return;
  started_ = true;
  sim_.every(sim_.now() + config_.sample_interval, config_.sample_interval,
             [this]() {
               sample();
               return true;
             });
}

void CcaIdentifier::sample() {
  // Sample the flight register of every occupied slot; drop histories of
  // released slots.
  for (auto it = history_.begin(); it != history_.end();) {
    if (!program_.tracker().occupied(it->first)) {
      it = history_.erase(it);
    } else {
      ++it;
    }
  }
  for (std::uint16_t slot = 0; slot < telemetry::kFlowSlots; ++slot) {
    if (!program_.tracker().occupied(slot)) continue;
    auto& h = history_[slot];
    h.flight.push_back(static_cast<double>(
        program_.limit_classifier().flight_bytes(slot)));
    h.losses.push_back(program_.rtt_loss().losses(slot));
    if (h.flight.size() > config_.window) {
      h.flight.pop_front();
      h.losses.pop_front();
    }
  }
}

CcaIdentifier::Features CcaIdentifier::features(std::uint16_t slot) const {
  Features f;
  auto it = history_.find(slot);
  if (it == history_.end()) return f;
  const auto& ring = it->second.flight;
  f.samples = ring.size();
  if (!it->second.losses.empty()) {
    f.losses = it->second.losses.back() - it->second.losses.front();
  }
  if (ring.size() < 4) return f;

  util::RunningStats stats;
  for (double v : ring) stats.add(v);
  f.mean_flight = stats.mean();
  f.cv = stats.cv();

  // Window drift: quarter means at both ends.
  const std::size_t quarter = std::max<std::size_t>(1, ring.size() / 4);
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < quarter; ++i) {
    head += ring[i];
    tail += ring[ring.size() - 1 - i];
  }
  if (f.mean_flight > 0) {
    f.trend = (tail - head) / static_cast<double>(quarter) / f.mean_flight;
  }

  // Split the series into growth segments separated by multiplicative
  // decreases; measure where within each segment the growth lands.
  std::vector<std::size_t> cuts;  // index of the sample AFTER a decrease
  for (std::size_t i = 1; i < ring.size(); ++i) {
    if (ring[i - 1] > 0 &&
        ring[i] < ring[i - 1] * (1.0 - config_.decrease_threshold)) {
      ++f.decreases;
      cuts.push_back(i);
    }
  }

  double early_sum = 0.0;
  double total_sum = 0.0;
  auto segment = [&](std::size_t begin, std::size_t end) {
    // [begin, end): one growth run between decreases.
    if (end - begin < 9) return;  // too short to shape-test
    const std::size_t third = (end - begin) / 3;
    const double start_v = ring[begin];
    const double early_v = ring[begin + third];
    const double end_v = ring[end - 1];
    const double total = end_v - start_v;
    if (total <= 0) return;
    early_sum += std::max(0.0, early_v - start_v);
    total_sum += total;
  };
  std::size_t seg_begin = 0;
  for (std::size_t cut : cuts) {
    segment(seg_begin, cut);
    seg_begin = cut;
  }
  segment(seg_begin, ring.size());
  if (total_sum > 0) f.early_share = early_sum / total_sum;
  return f;
}

CcaClass CcaIdentifier::classify_features(const Features& f) {
  if (f.samples < 4) return CcaClass::kUnknown;
  if (f.mean_flight <= 0) return CcaClass::kUnknown;

  if (f.decreases == 0 && f.losses == 0) {
    if (std::abs(f.trend) >= 0.05 && f.early_share > 0.0) {
      // Still climbing without loss: a loss-based CCA probing for
      // bandwidth. Classify by the shape of the climb (below).
    } else if (f.cv > 0.02 && f.cv < 0.45) {
      // Flat band with visible oscillation: BBR's gain cycling. A purely
      // receiver/application-limited flow is flatter still (cv ~0).
      return CcaClass::kBbrLike;
    } else {
      return CcaClass::kUnknown;
    }
  }
  if (f.early_share <= 0.0) return CcaClass::kUnknown;
  // Loss-based: Reno's linear (AIMD) growth puts exactly a third of each
  // segment's growth in its first third. CUBIC is non-linear in either
  // direction — a fast concave rise toward w_max (early-heavy) or, when
  // segments end in the convex probing spurt that precedes the next loss,
  // a late-heavy tail. Classify by deviation from linearity.
  if (std::abs(f.early_share - 1.0 / 3.0) > 0.12) {
    return CcaClass::kCubicLike;
  }
  return CcaClass::kRenoLike;
}

CcaClass CcaIdentifier::classify(std::uint16_t slot) const {
  const Features f = features(slot);
  if (f.samples < config_.min_samples) return CcaClass::kUnknown;
  return classify_features(f);
}

std::map<std::uint16_t, CcaClass> CcaIdentifier::classify_all() const {
  std::map<std::uint16_t, CcaClass> out;
  for (const auto& [slot, history] : history_) {
    (void)history;
    out[slot] = classify(slot);
  }
  return out;
}

}  // namespace p4s::cp
