// Report_v1: the structured measurement records the switch control plane
// produces from raw register values (Figure 7). These are JSON documents
// shipped to perfSONAR's Logstash over the TCP input plugin; Logstash
// adds archive metadata to make Report_v2 and stores it in OpenSearch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "telemetry/types.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace p4s::cp {

/// The four run-time-configurable metrics (§3.2: t_N, t_P, t_R, t_Q and
/// thresholds a_N, a_P, a_R, a_Q).
enum class MetricKind : std::uint8_t {
  kThroughput = 0,   // N: bytes
  kPacketLoss = 1,   // P: losses
  kRtt = 2,          // R: round-trip time
  kQueueOccupancy = 3,  // Q: queue occupancy
};
inline constexpr std::size_t kMetricCount = 4;

const char* metric_name(MetricKind kind);
/// Inverse of metric_name; throws std::invalid_argument on unknown names.
MetricKind metric_from_name(const std::string& name);

/// Consumer of Report_v1 documents (Logstash's TCP input plugin in the
/// integrated system; experiment collectors in benches and tests).
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void on_report(const util::Json& report) = 0;
};

/// JSON object describing a flow (embedded in every per-flow report).
util::Json flow_json(const telemetry::FlowIdentity& flow);

// Report_v1 builders. Every document carries "report" (the record kind)
// and "ts_ns" (switch nanosecond timestamp).
util::Json make_metric_report(MetricKind kind,
                              const telemetry::FlowIdentity& flow,
                              SimTime ts, double value,
                              const char* value_key);
/// Name-based variant for registered extension extractors (the MetricKind
/// overload delegates here).
util::Json make_metric_report(const char* metric,
                              const telemetry::FlowIdentity& flow,
                              SimTime ts, double value,
                              const char* value_key);
/// Switch-wide metric report: one value for the whole monitored link, no
/// "flow" object (histogram quantiles and other link-level summaries).
util::Json make_switch_metric_report(const char* metric, SimTime ts,
                                     double value, const char* value_key);
util::Json make_flow_detected_report(const telemetry::FlowIdentity& flow,
                                     SimTime ts);
util::Json make_flow_final_report(const telemetry::FlowIdentity& flow,
                                  SimTime start, SimTime end,
                                  std::uint64_t packets, std::uint64_t bytes,
                                  double avg_throughput_bps,
                                  std::uint64_t retransmissions,
                                  double retransmission_pct);
util::Json make_microburst_report(const telemetry::MicroburstDigest& d);
util::Json make_blockage_report(const telemetry::BlockageDigest& d,
                                const telemetry::FlowIdentity& flow);
util::Json make_limitation_report(const telemetry::FlowIdentity& flow,
                                  SimTime ts, telemetry::LimitVerdict v,
                                  std::uint64_t flight_bytes);
util::Json make_aggregate_report(SimTime ts, double link_utilization,
                                 std::optional<double> fairness,
                                 std::size_t active_flows,
                                 std::uint64_t total_bytes,
                                 std::uint64_t total_packets,
                                 double total_throughput_bps);
util::Json make_alert_report(MetricKind kind,
                             const telemetry::FlowIdentity& flow, SimTime ts,
                             double value, double threshold);
util::Json make_alert_report(const char* metric,
                             const telemetry::FlowIdentity& flow, SimTime ts,
                             double value, double threshold);

}  // namespace p4s::cp
