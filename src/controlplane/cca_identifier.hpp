// Congestion-control-algorithm identification (after Kfoury et al.'s
// P4CCI, the paper's §6): the data plane extracts each flow's
// bytes-in-flight (the limitation classifier's flight register) and
// forwards the series to the controller, which classifies the flow's
// CCA. P4CCI feeds a deep-learning model; this reproduction uses an
// interpretable feature heuristic over the same signal:
//
//  * multiplicative window decreases + losses  -> loss-based CCA;
//    within loss-based, the shape of the growth segment between
//    decreases separates CUBIC (fast concave rise toward w_max, then a
//    plateau: most growth lands in the segment's first third) from
//    Reno/AIMD (linear: growth spread evenly);
//  * a backlogged flow with NO decreases and NO losses whose flight
//    oscillates in a tight band -> BBR-like (gain-cycle probing);
//  * not enough signal -> unknown.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"

namespace p4s::cp {

enum class CcaClass : std::uint8_t {
  kUnknown = 0,
  kRenoLike = 1,
  kCubicLike = 2,
  kBbrLike = 3,
};

const char* to_string(CcaClass cca);

class CcaIdentifier {
 public:
  struct Config {
    /// Flight-size sampling cadence. Must be finer than BBR's probe
    /// phase (one rt_prop) or the probe oscillation aliases away;
    /// P4CCI's data plane exports at comparable rates.
    SimTime sample_interval = units::milliseconds(25);
    /// Samples kept per flow (ring buffer); 512 x 25 ms = 12.8 s.
    std::size_t window = 512;
    /// Relative drop between consecutive samples that counts as a
    /// multiplicative decrease.
    double decrease_threshold = 0.25;
    /// Minimum samples before a verdict is attempted.
    std::size_t min_samples = 40;
  };

  CcaIdentifier(sim::Simulation& sim, telemetry::DataPlaneProgram& program,
                Config config);
  CcaIdentifier(sim::Simulation& sim, telemetry::DataPlaneProgram& program)
      : CcaIdentifier(sim, program, Config{}) {}

  /// Start the sampling timer.
  void start();

  /// Current verdict for a tracked slot.
  CcaClass classify(std::uint16_t slot) const;

  /// Verdicts for every currently tracked flow.
  std::map<std::uint16_t, CcaClass> classify_all() const;

  /// Diagnostic features for a slot (exposed for tests and benches).
  struct Features {
    std::size_t samples = 0;
    int decreases = 0;
    /// Losses within the observation window (NOT lifetime: a BBR flow's
    /// startup burst must not brand it loss-based forever).
    std::uint64_t losses = 0;
    double mean_flight = 0.0;
    double cv = 0.0;          // flight coefficient of variation
    double early_share = 0.0; // growth fraction in segments' first third
    /// Net drift across the window: (mean of last quarter - mean of
    /// first quarter) / mean. Reno's loss-free additive climb shows a
    /// clear positive trend; BBR oscillates around a flat band.
    double trend = 0.0;
  };
  Features features(std::uint16_t slot) const;

 private:
  void sample();
  static CcaClass classify_features(const Features& f);

  sim::Simulation& sim_;
  telemetry::DataPlaneProgram& program_;
  Config config_;
  bool started_ = false;
  struct History {
    std::deque<double> flight;
    std::deque<std::uint64_t> losses;  // cumulative loss count per sample
  };
  std::map<std::uint16_t, History> history_;
};

}  // namespace p4s::cp
