// The switch control plane (§3.2, Figure 5b).
//
// The paper's four extraction timers — t_N (bytes), t_P (losses), t_R
// (RTT), t_Q (queue occupancy) — are instances of one generic
// MetricExtractor: a descriptor holding the report name, the value key,
// a register-reader callback and (optionally) per-flow / per-tick hooks.
// Each extractor runs on its own timer, reads the data plane's registers
// through the driver API, converts raw values to metrics (throughput
// from byte deltas, loss percentage, occupancy from queuing delay vs.
// buffer drain time) and emits Report_v1 documents to the configured
// sink. Each extractor has an optional alert threshold (a_N..a_Q): a
// breach emits an alert report, invokes the alert callback, and boosts
// that extractor's rate to its boosted interval until the value falls
// back below the threshold (§3.2). Adding a fifth metric is one
// register_extractor() call — no fork of the timer logic.
//
// A digest poll loop consumes data-plane digests (new long flow, FIN,
// microburst, blockage) and an idle scan finalizes flows that stopped
// sending, emitting the paper's terminated-long-flow report (§3.3.2).
// On every throughput tick the control plane also derives the traffic
// statistics of §5.3: link utilization, active flow count, aggregate
// bytes/packets and Jain's fairness index.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "controlplane/report.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"
#include "util/stats.hpp"

namespace p4s::cp {

struct MetricConfig {
  /// Extraction interval (t_X). samples_per_second = 1e9 / interval.
  SimTime interval = units::seconds(1);
  /// Alert threshold (a_X); disabled unless alert_enabled. Semantics:
  /// throughput bps, loss %, RTT ms, occupancy %.
  double alert_threshold = 0.0;
  bool alert_enabled = false;
  /// Interval while the threshold is exceeded.
  SimTime boosted_interval = units::milliseconds(100);
};

struct ControlPlaneConfig {
  std::array<MetricConfig, kMetricCount> metrics{};
  /// Idle time after which a tracked flow is considered terminated.
  SimTime flow_idle_timeout = units::seconds(2);
  SimTime digest_poll_interval = units::milliseconds(10);
  /// Monitored core-switch characteristics, needed to turn queuing delay
  /// into occupancy: occupancy = delay / (buffer_bytes * 8 / rate).
  std::uint64_t core_buffer_bytes = 0;
  std::uint64_t bottleneck_bps = 0;
  /// Site / monitored-switch identity stamped into every emitted report
  /// as "switch_id". Empty = untagged (the single-switch legacy format,
  /// byte-identical to pre-fabric reports).
  std::string switch_id;
};

class ControlPlane {
 public:
  ControlPlane(sim::Simulation& sim, telemetry::DataPlaneProgram& program,
               ControlPlaneConfig config);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  void set_sink(ReportSink* sink) { sink_ = sink; }
  ReportSink* sink() const { return sink_; }

  /// Start the extraction timers and digest polling.
  void start();

  // ---- Run-time configuration (driven by pSConfig's config-P4) --------
  // Validation: a sample rate must be finite and > 0, a threshold finite
  // and >= 0, or std::invalid_argument is thrown — a malformed value must
  // not silently arm a broken timer.
  void set_samples_per_second(MetricKind kind, double sps);
  void set_alert(MetricKind kind, double threshold,
                 std::optional<double> boosted_sps = std::nullopt);
  void clear_alert(MetricKind kind);
  /// Name-based variants covering registered extension extractors too;
  /// throw std::invalid_argument on unknown names.
  void set_samples_per_second(std::string_view metric, double sps);
  void set_alert(std::string_view metric, double threshold,
                 std::optional<double> boosted_sps = std::nullopt);
  MetricConfig& metric_config(MetricKind kind) {
    return config_.metrics[static_cast<std::size_t>(kind)];
  }
  /// Timer/alert configuration of any extractor, builtin or registered.
  MetricConfig& extractor_config(std::string_view metric);
  const ControlPlaneConfig& config() const { return config_; }

  // ---- Observability for experiments and tests ------------------------
  struct FlowState {
    telemetry::FlowIdentity flow;
    SimTime detected_at = 0;
    // Rolling values from the most recent extraction of each metric.
    double throughput_bps = 0.0;
    double loss_pct = 0.0;
    std::uint64_t loss_delta = 0;
    SimTime rtt_ns = 0;
    SimTime queue_delay_ns = 0;
    double queue_occupancy_pct = 0.0;
    telemetry::LimitVerdict verdict = telemetry::LimitVerdict::kUnknown;
    std::uint64_t flight_bytes = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t total_packets = 0;
    std::uint64_t total_losses = 0;
    // Extraction bookkeeping (per-metric deltas).
    std::uint64_t prev_bytes = 0;
    SimTime prev_bytes_at = 0;
    std::uint64_t prev_losses = 0;
    std::uint64_t prev_packets = 0;
    // Lifetime sample reservoirs (capped) feeding the terminated-flow
    // report's percentile summary.
    std::vector<double> rtt_samples_ms;
    std::vector<double> occupancy_samples_pct;
  };

  /// Reservoir cap: extraction samples beyond this are dropped (at 1 Hz
  /// that is over an hour of flow lifetime).
  static constexpr std::size_t kMaxLifetimeSamples = 4096;

  // ---- Extractor table ------------------------------------------------
  /// One extraction timer: name + value key + register reader, plus
  /// optional hooks. The four paper metrics are registered in the
  /// constructor; a fifth metric is one register_extractor() call.
  struct MetricExtractor {
    /// Report kind ("throughput", ...) and the alert's "metric" value.
    std::string name;
    /// JSON key carrying the value ("throughput_bps", ...).
    std::string value_key;
    /// Read the metric for a slot from the data plane, updating any
    /// rolling per-flow state. Called once per flow per tick.
    std::function<double(std::uint16_t slot, FlowState& state, SimTime now)>
        read;
    /// Switch-wide alternative to `read`: one value per tick, no per-flow
    /// loop (histogram quantiles, drop totals...). Exactly one of read /
    /// read_switch must be set.
    std::function<double(SimTime now)> read_switch;
    /// Optional with read_switch: enrich the emitted report document
    /// (extra quantiles, serialized histogram bins...).
    std::function<void(util::Json& doc, SimTime now)> annotate;
    /// Optional: emitted-after hook per flow (the limitation report
    /// piggybacks on the throughput extraction this way).
    std::function<void(std::uint16_t slot, FlowState& state, SimTime now)>
        per_flow;
    /// Optional: once per tick after all flows (aggregate statistics).
    std::function<void(SimTime now)> per_tick;
  };

  /// Register an additional extraction timer. If the control plane is
  /// already started the timer arms immediately. The four builtin
  /// entries' configs live in config().metrics; extension configs are
  /// reachable via extractor_config(name).
  void register_extractor(MetricExtractor extractor,
                          MetricConfig config = {});

  /// Remove a registered extension extractor: its timer stops at the
  /// next tick, its closures are released immediately (they may capture
  /// objects whose lifetime ends here), and the metric name becomes
  /// reusable. Builtins are not removable; throws std::invalid_argument
  /// on builtins and unknown names.
  void unregister_extractor(std::string_view metric);

  /// Whether a live (not unregistered) extractor with this metric name
  /// exists — builtin or extension.
  bool has_extractor(std::string_view metric) const;

  /// Register an additional digest source, drained on every digest poll
  /// after the builtin digest queues; every returned document is
  /// emitted as a report (switch_id stamped like any other). The
  /// program VM's digests arrive this way.
  void register_digest_source(
      std::function<std::vector<util::Json>(SimTime now)> drain);

  /// Number of live extraction timers (builtins + registered
  /// extensions, minus unregistered ones).
  std::size_t extractor_count() const {
    std::size_t live = 0;
    for (const auto& entry : extractors_) {
      if (!entry.removed) ++live;
    }
    return live;
  }

  struct Aggregates {
    SimTime at = 0;
    double link_utilization = 0.0;  // fraction of bottleneck capacity
    /// Jain's index over flow throughputs; nullopt while the link is
    /// idle (no tracked flows / all rates zero) — undefined, not 1.0.
    std::optional<double> fairness;
    std::size_t active_flows = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t total_packets = 0;
    double total_throughput_bps = 0.0;
  };

  struct FlowFinalReport {
    telemetry::FlowIdentity flow;
    SimTime start = 0;
    SimTime end = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    double avg_throughput_bps = 0.0;
    std::uint64_t retransmissions = 0;
    double retransmission_pct = 0.0;
    // Lifetime percentile summary over the extracted samples.
    double rtt_p50_ms = 0.0;
    double rtt_p95_ms = 0.0;
    double rtt_p99_ms = 0.0;
    double occupancy_p95_pct = 0.0;
  };

  struct Alert {
    /// Builtin kind; nullopt for alerts raised by registered extension
    /// extractors (identified by metric_name alone).
    std::optional<MetricKind> metric;
    std::string metric_name;
    telemetry::FlowIdentity flow;
    SimTime at = 0;
    double value = 0.0;
    double threshold = 0.0;
  };

  /// Current per-flow state (keyed by slot).
  const std::unordered_map<std::uint16_t, FlowState>& flows() const {
    return flows_;
  }
  const Aggregates& aggregates() const { return aggregates_; }
  const std::vector<FlowFinalReport>& final_reports() const {
    return final_reports_;
  }
  const std::vector<Alert>& alerts() const { return alerts_; }
  const std::vector<telemetry::MicroburstDigest>& microbursts() const {
    return microbursts_;
  }

  void set_on_alert(std::function<void(const Alert&)> cb) {
    on_alert_ = std::move(cb);
  }
  void set_on_blockage(
      std::function<void(const telemetry::BlockageDigest&)> cb) {
    on_blockage_ = std::move(cb);
  }
  void set_on_microburst(
      std::function<void(const telemetry::MicroburstDigest&)> cb) {
    on_microburst_ = std::move(cb);
  }

  std::uint64_t reports_emitted() const { return reports_emitted_; }

  /// Parallel-fabric hook: invoked immediately before every data-plane
  /// register read (extraction tick, digest poll, idle scan). The fabric
  /// installs a barrier here — "this switch's pipeline shard has executed
  /// every mirror delivered before now" — so driver reads observe exactly
  /// the register state the serial run would. Unset = no-op (serial).
  void set_driver_sync(std::function<void()> sync) {
    driver_sync_ = std::move(sync);
  }

 private:
  /// One row of the extractor table: the descriptor plus its timer/alert
  /// configuration and boost state. Builtin rows alias config_.metrics
  /// (so config() snapshots stay authoritative for replay); extension
  /// rows carry their own config.
  struct ExtractorEntry {
    MetricExtractor desc;
    MetricConfig extension_config{};
    int builtin = -1;  // index into config_.metrics, or -1 for extensions
    bool boosted = false;
    /// Unregistered. The row is tombstoned, never erased: scheduled
    /// timer lambdas capture table indices, which must stay stable.
    bool removed = false;
  };

  void register_builtins();
  MetricConfig& config_of(ExtractorEntry& entry) {
    return entry.builtin >= 0 ? config_.metrics[entry.builtin]
                              : entry.extension_config;
  }
  const MetricConfig& config_of(const ExtractorEntry& entry) const {
    return entry.builtin >= 0 ? config_.metrics[entry.builtin]
                              : entry.extension_config;
  }
  ExtractorEntry& entry_of(std::string_view metric);
  void schedule_extractor(std::size_t index);
  void extract(std::size_t index);
  void poll_digests();
  void scan_idle_flows();
  void finalize_flow(std::uint16_t slot, SimTime end_ts);
  void emit(util::Json report);
  void check_alert(ExtractorEntry& entry,
                   const telemetry::FlowIdentity& flow, double value);
  SimTime current_interval(const ExtractorEntry& entry) const;
  double occupancy_pct(SimTime queue_delay) const;
  static void validate_sps(double sps);
  static void validate_threshold(double threshold);

  sim::Simulation& sim_;
  telemetry::DataPlaneProgram& program_;
  ControlPlaneConfig config_;
  ReportSink* sink_ = nullptr;
  bool started_ = false;

  std::unordered_map<std::uint16_t, FlowState> flows_;
  Aggregates aggregates_;
  std::vector<FlowFinalReport> final_reports_;
  std::vector<Alert> alerts_;
  std::vector<telemetry::MicroburstDigest> microbursts_;
  std::vector<ExtractorEntry> extractors_;
  std::vector<std::function<std::vector<util::Json>(SimTime)>>
      digest_sources_;

  std::function<void(const Alert&)> on_alert_;
  std::function<void(const telemetry::BlockageDigest&)> on_blockage_;
  std::function<void(const telemetry::MicroburstDigest&)> on_microburst_;
  std::function<void()> driver_sync_;
  std::uint64_t reports_emitted_ = 0;
};

}  // namespace p4s::cp
