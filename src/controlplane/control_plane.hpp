// The switch control plane (§3.2, Figure 5b).
//
// Four independent extraction timers — t_N (bytes), t_P (losses), t_R
// (RTT), t_Q (queue occupancy) — read the data plane's registers through
// the driver API, convert raw values to metrics (throughput from byte
// deltas, loss percentage, occupancy from queuing delay vs. buffer drain
// time) and emit Report_v1 documents to the configured sink. Each metric
// has an optional alert threshold (a_N..a_Q): a breach emits an alert
// report, invokes the alert callback, and boosts that metric's extraction
// rate to its boosted interval until the value falls back below the
// threshold (§3.2).
//
// A digest poll loop consumes data-plane digests (new long flow, FIN,
// microburst, blockage) and an idle scan finalizes flows that stopped
// sending, emitting the paper's terminated-long-flow report (§3.3.2).
// On every throughput tick the control plane also derives the traffic
// statistics of §5.3: link utilization, active flow count, aggregate
// bytes/packets and Jain's fairness index.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "controlplane/report.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"
#include "util/stats.hpp"

namespace p4s::cp {

struct MetricConfig {
  /// Extraction interval (t_X). samples_per_second = 1e9 / interval.
  SimTime interval = units::seconds(1);
  /// Alert threshold (a_X); disabled unless alert_enabled. Semantics:
  /// throughput bps, loss %, RTT ms, occupancy %.
  double alert_threshold = 0.0;
  bool alert_enabled = false;
  /// Interval while the threshold is exceeded.
  SimTime boosted_interval = units::milliseconds(100);
};

struct ControlPlaneConfig {
  std::array<MetricConfig, kMetricCount> metrics{};
  /// Idle time after which a tracked flow is considered terminated.
  SimTime flow_idle_timeout = units::seconds(2);
  SimTime digest_poll_interval = units::milliseconds(10);
  /// Monitored core-switch characteristics, needed to turn queuing delay
  /// into occupancy: occupancy = delay / (buffer_bytes * 8 / rate).
  std::uint64_t core_buffer_bytes = 0;
  std::uint64_t bottleneck_bps = 0;
};

class ControlPlane {
 public:
  ControlPlane(sim::Simulation& sim, telemetry::DataPlaneProgram& program,
               ControlPlaneConfig config);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  void set_sink(ReportSink* sink) { sink_ = sink; }

  /// Start the extraction timers and digest polling.
  void start();

  // ---- Run-time configuration (driven by pSConfig's config-P4) --------
  void set_samples_per_second(MetricKind kind, double sps);
  void set_alert(MetricKind kind, double threshold,
                 std::optional<double> boosted_sps = std::nullopt);
  void clear_alert(MetricKind kind);
  MetricConfig& metric_config(MetricKind kind) {
    return config_.metrics[static_cast<std::size_t>(kind)];
  }
  const ControlPlaneConfig& config() const { return config_; }

  // ---- Observability for experiments and tests ------------------------
  struct FlowState {
    telemetry::FlowIdentity flow;
    SimTime detected_at = 0;
    // Rolling values from the most recent extraction of each metric.
    double throughput_bps = 0.0;
    double loss_pct = 0.0;
    std::uint64_t loss_delta = 0;
    SimTime rtt_ns = 0;
    SimTime queue_delay_ns = 0;
    double queue_occupancy_pct = 0.0;
    telemetry::LimitVerdict verdict = telemetry::LimitVerdict::kUnknown;
    std::uint64_t flight_bytes = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t total_packets = 0;
    std::uint64_t total_losses = 0;
    // Extraction bookkeeping (per-metric deltas).
    std::uint64_t prev_bytes = 0;
    SimTime prev_bytes_at = 0;
    std::uint64_t prev_losses = 0;
    std::uint64_t prev_packets = 0;
    // Lifetime sample reservoirs (capped) feeding the terminated-flow
    // report's percentile summary.
    std::vector<double> rtt_samples_ms;
    std::vector<double> occupancy_samples_pct;
  };

  /// Reservoir cap: extraction samples beyond this are dropped (at 1 Hz
  /// that is over an hour of flow lifetime).
  static constexpr std::size_t kMaxLifetimeSamples = 4096;

  struct Aggregates {
    SimTime at = 0;
    double link_utilization = 0.0;  // fraction of bottleneck capacity
    /// Jain's index over flow throughputs; nullopt while the link is
    /// idle (no tracked flows / all rates zero) — undefined, not 1.0.
    std::optional<double> fairness;
    std::size_t active_flows = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t total_packets = 0;
    double total_throughput_bps = 0.0;
  };

  struct FlowFinalReport {
    telemetry::FlowIdentity flow;
    SimTime start = 0;
    SimTime end = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    double avg_throughput_bps = 0.0;
    std::uint64_t retransmissions = 0;
    double retransmission_pct = 0.0;
    // Lifetime percentile summary over the extracted samples.
    double rtt_p50_ms = 0.0;
    double rtt_p95_ms = 0.0;
    double rtt_p99_ms = 0.0;
    double occupancy_p95_pct = 0.0;
  };

  struct Alert {
    MetricKind metric;
    telemetry::FlowIdentity flow;
    SimTime at = 0;
    double value = 0.0;
    double threshold = 0.0;
  };

  /// Current per-flow state (keyed by slot).
  const std::unordered_map<std::uint16_t, FlowState>& flows() const {
    return flows_;
  }
  const Aggregates& aggregates() const { return aggregates_; }
  const std::vector<FlowFinalReport>& final_reports() const {
    return final_reports_;
  }
  const std::vector<Alert>& alerts() const { return alerts_; }
  const std::vector<telemetry::MicroburstDigest>& microbursts() const {
    return microbursts_;
  }

  void set_on_alert(std::function<void(const Alert&)> cb) {
    on_alert_ = std::move(cb);
  }
  void set_on_blockage(
      std::function<void(const telemetry::BlockageDigest&)> cb) {
    on_blockage_ = std::move(cb);
  }
  void set_on_microburst(
      std::function<void(const telemetry::MicroburstDigest&)> cb) {
    on_microburst_ = std::move(cb);
  }

  std::uint64_t reports_emitted() const { return reports_emitted_; }

 private:
  struct MetricRuntime {
    bool boosted = false;
  };

  void schedule_metric(MetricKind kind);
  void extract_metric(MetricKind kind);
  void poll_digests();
  void scan_idle_flows();
  void finalize_flow(std::uint16_t slot, SimTime end_ts);
  void emit(const util::Json& report);
  void check_alert(MetricKind kind, const telemetry::FlowIdentity& flow,
                   double value);
  SimTime current_interval(MetricKind kind) const;
  double occupancy_pct(SimTime queue_delay) const;

  sim::Simulation& sim_;
  telemetry::DataPlaneProgram& program_;
  ControlPlaneConfig config_;
  ReportSink* sink_ = nullptr;
  bool started_ = false;

  std::unordered_map<std::uint16_t, FlowState> flows_;
  Aggregates aggregates_;
  std::vector<FlowFinalReport> final_reports_;
  std::vector<Alert> alerts_;
  std::vector<telemetry::MicroburstDigest> microbursts_;
  std::array<MetricRuntime, kMetricCount> runtime_{};

  std::function<void(const Alert&)> on_alert_;
  std::function<void(const telemetry::BlockageDigest&)> on_blockage_;
  std::function<void(const telemetry::MicroburstDigest&)> on_microburst_;
  std::uint64_t reports_emitted_ = 0;
};

}  // namespace p4s::cp
