#include "controlplane/quic_rtt_extractor.hpp"

namespace p4s::cp {

void register_quic_rtt_extractor(ControlPlane& cp,
                                 const telemetry::DataPlaneProgram& program,
                                 MetricConfig config) {
  const telemetry::SpinRttEngine* eng = program.spin_rtt_engine();
  if (eng == nullptr) return;
  ControlPlane::MetricExtractor ex;
  ex.name = std::string(eng->name());
  ex.value_key = "p50_ms";
  ex.read_switch = [eng](SimTime) { return eng->quantile_ns(0.50) / 1e6; };
  ex.annotate = [eng](util::Json& doc, SimTime) {
    doc["p95_ms"] = eng->quantile_ns(0.95) / 1e6;
    doc["samples"] = static_cast<std::int64_t>(eng->samples());
    doc["edges"] = static_cast<std::int64_t>(eng->edges());
    doc["rejected_reordered"] =
        static_cast<std::int64_t>(eng->rejected_reordered());
    doc["rejected_outlier"] =
        static_cast<std::int64_t>(eng->rejected_outlier());
    doc["rejected_floor"] = static_cast<std::int64_t>(eng->rejected_floor());
    doc["dcid_collisions"] = static_cast<std::int64_t>(eng->collisions());
  };
  cp.register_extractor(std::move(ex), config);
}

void register_nids_digest_source(ControlPlane& cp,
                                 telemetry::DataPlaneProgram& program) {
  telemetry::NidsFeatureEngine* eng = program.nids_engine();
  if (eng == nullptr) return;
  cp.register_digest_source(
      [eng](SimTime now) { return eng->drain_digests(now); });
}

}  // namespace p4s::cp
