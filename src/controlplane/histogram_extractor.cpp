#include "controlplane/histogram_extractor.hpp"

#include <string>

namespace p4s::cp {

void register_histogram_extractor(ControlPlane& cp,
                                  const telemetry::HistogramEngine& engine,
                                  MetricConfig config) {
  ControlPlane::MetricExtractor ex;
  ex.name = std::string(engine.name());
  ex.value_key = "p99_ms";
  const telemetry::HistogramEngine* eng = &engine;
  ex.read_switch = [eng](SimTime) {
    return eng->quantile_ns(0.99) / 1e6;
  };
  ex.annotate = [eng](util::Json& doc, SimTime) {
    doc["p50_ms"] = eng->quantile_ns(0.50) / 1e6;
    doc["p95_ms"] = eng->quantile_ns(0.95) / 1e6;
    doc["samples"] = static_cast<std::int64_t>(eng->samples());
    doc["histogram"] = eng->histogram().to_json();
  };
  cp.register_extractor(std::move(ex), config);
}

void register_histogram_extractors(ControlPlane& cp,
                                   const telemetry::DataPlaneProgram& program,
                                   MetricConfig config) {
  for (const auto& engine : program.histogram_engines()) {
    register_histogram_extractor(cp, *engine, config);
  }
}

}  // namespace p4s::cp
