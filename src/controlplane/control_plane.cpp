#include "controlplane/control_plane.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace p4s::cp {

ControlPlane::ControlPlane(sim::Simulation& sim,
                           telemetry::DataPlaneProgram& program,
                           ControlPlaneConfig config)
    : sim_(sim), program_(program), config_(config) {}

void ControlPlane::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    schedule_metric(static_cast<MetricKind>(i));
  }
  sim_.every(sim_.now() + config_.digest_poll_interval,
             config_.digest_poll_interval, [this]() {
               poll_digests();
               scan_idle_flows();
               return true;
             });
}

void ControlPlane::set_samples_per_second(MetricKind kind, double sps) {
  if (sps <= 0.0) return;
  metric_config(kind).interval = units::seconds_f(1.0 / sps);
}

void ControlPlane::set_alert(MetricKind kind, double threshold,
                             std::optional<double> boosted_sps) {
  MetricConfig& mc = metric_config(kind);
  mc.alert_enabled = true;
  mc.alert_threshold = threshold;
  if (boosted_sps.has_value() && *boosted_sps > 0.0) {
    mc.boosted_interval = units::seconds_f(1.0 / *boosted_sps);
  }
}

void ControlPlane::clear_alert(MetricKind kind) {
  metric_config(kind).alert_enabled = false;
  runtime_[static_cast<std::size_t>(kind)].boosted = false;
}

SimTime ControlPlane::current_interval(MetricKind kind) const {
  const auto& mc = config_.metrics[static_cast<std::size_t>(kind)];
  const auto& rt = runtime_[static_cast<std::size_t>(kind)];
  const SimTime interval = rt.boosted ? mc.boosted_interval : mc.interval;
  return std::max<SimTime>(interval, units::microseconds(100));
}

void ControlPlane::schedule_metric(MetricKind kind) {
  sim_.after(current_interval(kind), [this, kind]() {
    extract_metric(kind);
    schedule_metric(kind);  // re-arm with the (possibly boosted) interval
  });
}

double ControlPlane::occupancy_pct(SimTime queue_delay) const {
  if (config_.core_buffer_bytes == 0 || config_.bottleneck_bps == 0) {
    return 0.0;
  }
  const double drain_ns = static_cast<double>(config_.core_buffer_bytes) *
                          8.0 * 1e9 /
                          static_cast<double>(config_.bottleneck_bps);
  return 100.0 * static_cast<double>(queue_delay) / drain_ns;
}

void ControlPlane::extract_metric(MetricKind kind) {
  const SimTime now = sim_.now();
  double worst = 0.0;  // per-tick max, drives the boost hysteresis

  for (auto& [slot, state] : flows_) {
    switch (kind) {
      case MetricKind::kThroughput: {
        const std::uint64_t bytes = program_.bytes(slot);
        state.total_bytes = bytes;
        state.total_packets = program_.packets(slot);
        const SimTime prev_at = state.prev_bytes_at
                                    ? state.prev_bytes_at
                                    : state.detected_at;
        const double dt = units::to_seconds(now - prev_at);
        if (dt > 0.0) {
          state.throughput_bps =
              static_cast<double>(bytes - state.prev_bytes) * 8.0 / dt;
        }
        state.prev_bytes = bytes;
        state.prev_bytes_at = now;
        emit(make_metric_report(kind, state.flow, now,
                                state.throughput_bps, "throughput_bps"));
        check_alert(kind, state.flow, state.throughput_bps);
        worst = std::max(worst, state.throughput_bps);
        break;
      }
      case MetricKind::kPacketLoss: {
        const std::uint64_t losses = program_.rtt_loss().losses(slot);
        const std::uint64_t packets = program_.packets(slot);
        state.total_losses = losses;
        const std::uint64_t dl = losses - state.prev_losses;
        const std::uint64_t dp = packets - state.prev_packets;
        state.loss_delta = dl;
        state.loss_pct =
            dp > 0 ? 100.0 * static_cast<double>(dl) /
                         static_cast<double>(dp)
                   : 0.0;
        state.prev_losses = losses;
        state.prev_packets = packets;
        emit(make_metric_report(kind, state.flow, now, state.loss_pct,
                                "loss_pct"));
        check_alert(kind, state.flow, state.loss_pct);
        worst = std::max(worst, state.loss_pct);
        break;
      }
      case MetricKind::kRtt: {
        state.rtt_ns = program_.rtt_loss().last_rtt(slot);
        const double rtt_ms = units::to_milliseconds(state.rtt_ns);
        if (state.rtt_ns > 0 &&
            state.rtt_samples_ms.size() < kMaxLifetimeSamples) {
          state.rtt_samples_ms.push_back(rtt_ms);
        }
        emit(make_metric_report(kind, state.flow, now, rtt_ms, "rtt_ms"));
        check_alert(kind, state.flow, rtt_ms);
        worst = std::max(worst, rtt_ms);
        break;
      }
      case MetricKind::kQueueOccupancy: {
        state.queue_delay_ns = program_.queue_monitor().last_queue_delay(slot);
        state.queue_occupancy_pct = occupancy_pct(state.queue_delay_ns);
        if (state.occupancy_samples_pct.size() < kMaxLifetimeSamples) {
          state.occupancy_samples_pct.push_back(state.queue_occupancy_pct);
        }
        emit(make_metric_report(kind, state.flow, now,
                                state.queue_occupancy_pct,
                                "occupancy_pct"));
        check_alert(kind, state.flow, state.queue_occupancy_pct);
        worst = std::max(worst, state.queue_occupancy_pct);
        break;
      }
    }
    // Limitation verdict piggybacks on the throughput extraction.
    if (kind == MetricKind::kThroughput) {
      state.verdict = program_.limit_classifier().verdict(slot);
      state.flight_bytes = program_.limit_classifier().flight_bytes(slot);
      emit(make_limitation_report(state.flow, now, state.verdict,
                                  state.flight_bytes));
    }
  }

  // Boost hysteresis: drop back to the normal rate once the worst value
  // across flows is below the threshold again.
  auto& rt = runtime_[static_cast<std::size_t>(kind)];
  const auto& mc = config_.metrics[static_cast<std::size_t>(kind)];
  if (rt.boosted && (!mc.alert_enabled || worst < mc.alert_threshold)) {
    rt.boosted = false;
  }

  // Aggregate traffic statistics (§5.3) on every throughput tick.
  if (kind == MetricKind::kThroughput) {
    Aggregates agg;
    agg.at = now;
    std::vector<double> rates;
    rates.reserve(flows_.size());
    for (const auto& [slot, state] : flows_) {
      (void)slot;
      agg.total_bytes += state.total_bytes;
      agg.total_packets += state.total_packets;
      agg.total_throughput_bps += state.throughput_bps;
      rates.push_back(state.throughput_bps);
    }
    agg.active_flows = flows_.size();
    agg.fairness = util::jain_fairness(rates);
    if (config_.bottleneck_bps > 0) {
      agg.link_utilization = agg.total_throughput_bps /
                             static_cast<double>(config_.bottleneck_bps);
    }
    aggregates_ = agg;
    emit(make_aggregate_report(now, agg.link_utilization, agg.fairness,
                               agg.active_flows, agg.total_bytes,
                               agg.total_packets,
                               agg.total_throughput_bps));
  }
}

void ControlPlane::check_alert(MetricKind kind,
                               const telemetry::FlowIdentity& flow,
                               double value) {
  const auto& mc = config_.metrics[static_cast<std::size_t>(kind)];
  if (!mc.alert_enabled || value < mc.alert_threshold) return;
  auto& rt = runtime_[static_cast<std::size_t>(kind)];
  const SimTime now = sim_.now();
  Alert alert{kind, flow, now, value, mc.alert_threshold};
  alerts_.push_back(alert);
  emit(make_alert_report(kind, flow, now, value, mc.alert_threshold));
  if (on_alert_) on_alert_(alert);
  // §3.2: exceeding the threshold increases the collection rate.
  rt.boosted = true;
}

void ControlPlane::poll_digests() {
  for (const auto& d : program_.tracker().new_flow_digests().drain()) {
    FlowState state;
    state.flow = d.flow;
    state.detected_at = d.detected_at;
    flows_[d.slot] = state;
    emit(make_flow_detected_report(d.flow, d.detected_at));
  }
  for (const auto& d : program_.fin_digests().drain()) {
    if (flows_.count(d.slot) > 0) finalize_flow(d.slot, d.at);
  }
  for (const auto& d : program_.queue_monitor().microburst_digests().drain()) {
    microbursts_.push_back(d);
    emit(make_microburst_report(d));
    if (on_microburst_) on_microburst_(d);
  }
  for (const auto& d : program_.int_exporter().postcards().drain()) {
    util::Json j = util::Json::object();
    j["report"] = "int_postcard";
    j["ts_ns"] = static_cast<std::int64_t>(d.egress_ts);
    j["flow_id"] = static_cast<std::int64_t>(d.flow_id);
    j["queue_delay_ns"] = static_cast<std::int64_t>(d.queue_delay_ns);
    j["seq"] = static_cast<std::int64_t>(d.seq);
    emit(j);
  }
  for (const auto& d : program_.iat_monitor().blockage_digests().drain()) {
    auto it = flows_.find(d.slot);
    if (it != flows_.end()) {
      emit(make_blockage_report(d, it->second.flow));
    }
    if (on_blockage_) on_blockage_(d);
  }
}

void ControlPlane::scan_idle_flows() {
  const SimTime now = sim_.now();
  std::vector<std::uint16_t> expired;
  for (const auto& [slot, state] : flows_) {
    (void)state;
    const SimTime last = program_.last_seen(slot);
    if (last != 0 && now > last && now - last >= config_.flow_idle_timeout) {
      expired.push_back(slot);
    }
  }
  for (std::uint16_t slot : expired) finalize_flow(slot, now);
}

void ControlPlane::finalize_flow(std::uint16_t slot, SimTime end_ts) {
  auto it = flows_.find(slot);
  if (it == flows_.end()) return;

  FlowFinalReport report;
  report.flow = it->second.flow;
  report.start = program_.first_seen(slot);
  const SimTime last = program_.last_seen(slot);
  report.end = last != 0 ? last : end_ts;
  report.packets = program_.packets(slot);
  report.bytes = program_.bytes(slot);
  report.retransmissions = program_.rtt_loss().losses(slot);
  if (report.end > report.start) {
    report.avg_throughput_bps =
        static_cast<double>(report.bytes) * 8.0 /
        units::to_seconds(report.end - report.start);
  }
  if (report.packets > 0) {
    report.retransmission_pct = 100.0 *
                                static_cast<double>(report.retransmissions) /
                                static_cast<double>(report.packets);
  }
  report.rtt_p50_ms = util::percentile(it->second.rtt_samples_ms, 0.50);
  report.rtt_p95_ms = util::percentile(it->second.rtt_samples_ms, 0.95);
  report.rtt_p99_ms = util::percentile(it->second.rtt_samples_ms, 0.99);
  report.occupancy_p95_pct =
      util::percentile(it->second.occupancy_samples_pct, 0.95);
  final_reports_.push_back(report);
  util::Json final_doc = make_flow_final_report(
      report.flow, report.start, report.end, report.packets, report.bytes,
      report.avg_throughput_bps, report.retransmissions,
      report.retransmission_pct);
  final_doc["rtt_p50_ms"] = report.rtt_p50_ms;
  final_doc["rtt_p95_ms"] = report.rtt_p95_ms;
  final_doc["rtt_p99_ms"] = report.rtt_p99_ms;
  final_doc["occupancy_p95_pct"] = report.occupancy_p95_pct;
  emit(final_doc);
  program_.release_slot(slot);
  flows_.erase(it);
}

void ControlPlane::emit(const util::Json& report) {
  ++reports_emitted_;
  if (sink_ != nullptr) sink_->on_report(report);
}

}  // namespace p4s::cp
