#include "controlplane/control_plane.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace p4s::cp {

ControlPlane::ControlPlane(sim::Simulation& sim,
                           telemetry::DataPlaneProgram& program,
                           ControlPlaneConfig config)
    : sim_(sim), program_(program), config_(std::move(config)) {
  register_builtins();
}

// The four paper metrics (§3.2) expressed as extractor-table rows. Each
// reader reproduces the original t_N/t_P/t_R/t_Q body exactly; the
// generic extract() loop supplies the shared report/alert/boost logic
// those four timers used to duplicate.
void ControlPlane::register_builtins() {
  MetricExtractor throughput;
  throughput.name = metric_name(MetricKind::kThroughput);
  throughput.value_key = "throughput_bps";
  throughput.read = [this](std::uint16_t slot, FlowState& state,
                           SimTime now) {
    const std::uint64_t bytes = program_.bytes(slot);
    state.total_bytes = bytes;
    state.total_packets = program_.packets(slot);
    const SimTime prev_at =
        state.prev_bytes_at ? state.prev_bytes_at : state.detected_at;
    const double dt = units::to_seconds(now - prev_at);
    if (dt > 0.0) {
      state.throughput_bps =
          static_cast<double>(bytes - state.prev_bytes) * 8.0 / dt;
    }
    state.prev_bytes = bytes;
    state.prev_bytes_at = now;
    return state.throughput_bps;
  };
  // Limitation verdict piggybacks on the throughput extraction.
  throughput.per_flow = [this](std::uint16_t slot, FlowState& state,
                               SimTime now) {
    state.verdict = program_.limit_classifier().verdict(slot);
    state.flight_bytes = program_.limit_classifier().flight_bytes(slot);
    emit(make_limitation_report(state.flow, now, state.verdict,
                                state.flight_bytes));
  };
  // Aggregate traffic statistics (§5.3) on every throughput tick.
  throughput.per_tick = [this](SimTime now) {
    Aggregates agg;
    agg.at = now;
    std::vector<double> rates;
    rates.reserve(flows_.size());
    for (const auto& [slot, state] : flows_) {
      (void)slot;
      agg.total_bytes += state.total_bytes;
      agg.total_packets += state.total_packets;
      agg.total_throughput_bps += state.throughput_bps;
      rates.push_back(state.throughput_bps);
    }
    agg.active_flows = flows_.size();
    agg.fairness = util::jain_fairness(rates);
    if (config_.bottleneck_bps > 0) {
      agg.link_utilization = agg.total_throughput_bps /
                             static_cast<double>(config_.bottleneck_bps);
    }
    aggregates_ = agg;
    emit(make_aggregate_report(now, agg.link_utilization, agg.fairness,
                               agg.active_flows, agg.total_bytes,
                               agg.total_packets,
                               agg.total_throughput_bps));
  };

  MetricExtractor loss;
  loss.name = metric_name(MetricKind::kPacketLoss);
  loss.value_key = "loss_pct";
  loss.read = [this](std::uint16_t slot, FlowState& state, SimTime) {
    const std::uint64_t losses = program_.rtt_loss().losses(slot);
    const std::uint64_t packets = program_.packets(slot);
    state.total_losses = losses;
    const std::uint64_t dl = losses - state.prev_losses;
    const std::uint64_t dp = packets - state.prev_packets;
    state.loss_delta = dl;
    state.loss_pct =
        dp > 0
            ? 100.0 * static_cast<double>(dl) / static_cast<double>(dp)
            : 0.0;
    state.prev_losses = losses;
    state.prev_packets = packets;
    return state.loss_pct;
  };

  MetricExtractor rtt;
  rtt.name = metric_name(MetricKind::kRtt);
  rtt.value_key = "rtt_ms";
  rtt.read = [this](std::uint16_t slot, FlowState& state, SimTime) {
    state.rtt_ns = program_.rtt_loss().last_rtt(slot);
    const double rtt_ms = units::to_milliseconds(state.rtt_ns);
    if (state.rtt_ns > 0 &&
        state.rtt_samples_ms.size() < kMaxLifetimeSamples) {
      state.rtt_samples_ms.push_back(rtt_ms);
    }
    return rtt_ms;
  };

  MetricExtractor occupancy;
  occupancy.name = metric_name(MetricKind::kQueueOccupancy);
  occupancy.value_key = "occupancy_pct";
  occupancy.read = [this](std::uint16_t slot, FlowState& state, SimTime) {
    state.queue_delay_ns = program_.queue_monitor().last_queue_delay(slot);
    state.queue_occupancy_pct = occupancy_pct(state.queue_delay_ns);
    if (state.occupancy_samples_pct.size() < kMaxLifetimeSamples) {
      state.occupancy_samples_pct.push_back(state.queue_occupancy_pct);
    }
    return state.queue_occupancy_pct;
  };

  // Table order == MetricKind order: entry index IS the builtin kind for
  // the first kMetricCount rows, so the MetricKind-based configuration
  // API maps straight onto the table.
  MetricExtractor builtins[kMetricCount] = {std::move(throughput),
                                            std::move(loss), std::move(rtt),
                                            std::move(occupancy)};
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    ExtractorEntry entry;
    entry.desc = std::move(builtins[i]);
    entry.builtin = static_cast<int>(i);
    extractors_.push_back(std::move(entry));
  }
}

void ControlPlane::register_extractor(MetricExtractor extractor,
                                      MetricConfig config) {
  if (extractor.name.empty() ||
      static_cast<bool>(extractor.read) ==
          static_cast<bool>(extractor.read_switch)) {
    throw std::invalid_argument(
        "extractor needs a name and exactly one of read / read_switch");
  }
  for (const auto& entry : extractors_) {
    if (!entry.removed && entry.desc.name == extractor.name) {
      throw std::invalid_argument("duplicate extractor: " + extractor.name);
    }
  }
  ExtractorEntry entry;
  entry.desc = std::move(extractor);
  entry.extension_config = config;
  extractors_.push_back(std::move(entry));
  if (started_) schedule_extractor(extractors_.size() - 1);
}

void ControlPlane::unregister_extractor(std::string_view metric) {
  for (auto& entry : extractors_) {
    if (entry.removed || entry.desc.name != metric) continue;
    if (entry.builtin >= 0) {
      throw std::invalid_argument("cannot unregister builtin metric: " +
                                  std::string(metric));
    }
    entry.removed = true;
    // Release the closures now: they may capture objects (a VM's
    // installed program) whose lifetime ends with this call. The armed
    // timer checks `removed` before touching desc and dies quietly.
    entry.desc.read = nullptr;
    entry.desc.read_switch = nullptr;
    entry.desc.annotate = nullptr;
    entry.desc.per_flow = nullptr;
    entry.desc.per_tick = nullptr;
    return;
  }
  throw std::invalid_argument("unknown metric: " + std::string(metric));
}

bool ControlPlane::has_extractor(std::string_view metric) const {
  for (const auto& entry : extractors_) {
    if (!entry.removed && entry.desc.name == metric) return true;
  }
  return false;
}

void ControlPlane::register_digest_source(
    std::function<std::vector<util::Json>(SimTime)> drain) {
  digest_sources_.push_back(std::move(drain));
}

void ControlPlane::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < extractors_.size(); ++i) {
    schedule_extractor(i);
  }
  sim_.every(sim_.now() + config_.digest_poll_interval,
             config_.digest_poll_interval, [this]() {
               poll_digests();
               scan_idle_flows();
               return true;
             });
}

void ControlPlane::validate_sps(double sps) {
  if (!std::isfinite(sps) || sps <= 0.0) {
    throw std::invalid_argument(
        "samples_per_second must be a finite value > 0");
  }
}

void ControlPlane::validate_threshold(double threshold) {
  if (!std::isfinite(threshold) || threshold < 0.0) {
    throw std::invalid_argument(
        "alert threshold must be a finite value >= 0");
  }
}

ControlPlane::ExtractorEntry& ControlPlane::entry_of(
    std::string_view metric) {
  for (auto& entry : extractors_) {
    if (!entry.removed && entry.desc.name == metric) return entry;
  }
  throw std::invalid_argument("unknown metric: " + std::string(metric));
}

void ControlPlane::set_samples_per_second(MetricKind kind, double sps) {
  validate_sps(sps);
  metric_config(kind).interval = units::seconds_f(1.0 / sps);
}

void ControlPlane::set_samples_per_second(std::string_view metric,
                                          double sps) {
  validate_sps(sps);
  config_of(entry_of(metric)).interval = units::seconds_f(1.0 / sps);
}

void ControlPlane::set_alert(MetricKind kind, double threshold,
                             std::optional<double> boosted_sps) {
  validate_threshold(threshold);
  if (boosted_sps.has_value()) validate_sps(*boosted_sps);
  MetricConfig& mc = metric_config(kind);
  mc.alert_enabled = true;
  mc.alert_threshold = threshold;
  if (boosted_sps.has_value()) {
    mc.boosted_interval = units::seconds_f(1.0 / *boosted_sps);
  }
}

void ControlPlane::set_alert(std::string_view metric, double threshold,
                             std::optional<double> boosted_sps) {
  validate_threshold(threshold);
  if (boosted_sps.has_value()) validate_sps(*boosted_sps);
  MetricConfig& mc = config_of(entry_of(metric));
  mc.alert_enabled = true;
  mc.alert_threshold = threshold;
  if (boosted_sps.has_value()) {
    mc.boosted_interval = units::seconds_f(1.0 / *boosted_sps);
  }
}

void ControlPlane::clear_alert(MetricKind kind) {
  metric_config(kind).alert_enabled = false;
  extractors_[static_cast<std::size_t>(kind)].boosted = false;
}

MetricConfig& ControlPlane::extractor_config(std::string_view metric) {
  return config_of(entry_of(metric));
}

SimTime ControlPlane::current_interval(const ExtractorEntry& entry) const {
  const MetricConfig& mc = config_of(entry);
  const SimTime interval =
      entry.boosted ? mc.boosted_interval : mc.interval;
  return std::max<SimTime>(interval, units::microseconds(100));
}

void ControlPlane::schedule_extractor(std::size_t index) {
  sim_.after(current_interval(extractors_[index]), [this, index]() {
    if (extractors_[index].removed) return;  // unregistered: timer dies
    extract(index);
    schedule_extractor(index);  // re-arm with the (possibly boosted) interval
  });
}

double ControlPlane::occupancy_pct(SimTime queue_delay) const {
  if (config_.core_buffer_bytes == 0 || config_.bottleneck_bps == 0) {
    return 0.0;
  }
  const double drain_ns = static_cast<double>(config_.core_buffer_bytes) *
                          8.0 * 1e9 /
                          static_cast<double>(config_.bottleneck_bps);
  return 100.0 * static_cast<double>(queue_delay) / drain_ns;
}

// The one extraction body all timers share: read each flow's value, emit
// the metric report, run the alert/boost logic, then the entry's hooks.
void ControlPlane::extract(std::size_t index) {
  if (driver_sync_) driver_sync_();
  ExtractorEntry& entry = extractors_[index];
  const SimTime now = sim_.now();
  double worst = 0.0;  // per-tick max, drives the boost hysteresis

  if (entry.desc.read_switch) {
    // Switch-wide extractor: one value for the whole link, no per-flow
    // loop. Alerts carry an empty flow identity.
    const double value = entry.desc.read_switch(now);
    util::Json doc = make_switch_metric_report(
        entry.desc.name.c_str(), now, value, entry.desc.value_key.c_str());
    if (entry.desc.annotate) entry.desc.annotate(doc, now);
    emit(std::move(doc));
    check_alert(entry, telemetry::FlowIdentity{}, value);
    worst = value;
  } else {
    for (auto& [slot, state] : flows_) {
      const double value = entry.desc.read(slot, state, now);
      emit(make_metric_report(entry.desc.name.c_str(), state.flow, now,
                              value, entry.desc.value_key.c_str()));
      check_alert(entry, state.flow, value);
      worst = std::max(worst, value);
      if (entry.desc.per_flow) entry.desc.per_flow(slot, state, now);
    }
  }

  // Boost hysteresis: drop back to the normal rate once the worst value
  // across flows is below the threshold again.
  const MetricConfig& mc = config_of(entry);
  if (entry.boosted && (!mc.alert_enabled || worst < mc.alert_threshold)) {
    entry.boosted = false;
  }

  if (entry.desc.per_tick) entry.desc.per_tick(now);
}

void ControlPlane::check_alert(ExtractorEntry& entry,
                               const telemetry::FlowIdentity& flow,
                               double value) {
  const MetricConfig& mc = config_of(entry);
  if (!mc.alert_enabled || value < mc.alert_threshold) return;
  const SimTime now = sim_.now();
  Alert alert;
  if (entry.builtin >= 0) alert.metric = static_cast<MetricKind>(entry.builtin);
  alert.metric_name = entry.desc.name;
  alert.flow = flow;
  alert.at = now;
  alert.value = value;
  alert.threshold = mc.alert_threshold;
  alerts_.push_back(alert);
  emit(make_alert_report(entry.desc.name.c_str(), flow, now, value,
                         mc.alert_threshold));
  if (on_alert_) on_alert_(alert);
  // §3.2: exceeding the threshold increases the collection rate.
  entry.boosted = true;
}

void ControlPlane::poll_digests() {
  if (driver_sync_) driver_sync_();
  for (const auto& d : program_.tracker().new_flow_digests().drain()) {
    FlowState state;
    state.flow = d.flow;
    state.detected_at = d.detected_at;
    flows_[d.slot] = state;
    emit(make_flow_detected_report(d.flow, d.detected_at));
  }
  for (const auto& d : program_.fin_digests().drain()) {
    if (flows_.count(d.slot) > 0) finalize_flow(d.slot, d.at);
  }
  // Cuckoo flow-table evictions finalize exactly like a FIN: the slot's
  // registers still hold the flow's last values. (Always empty in
  // register mode.)
  for (const auto& d : program_.tracker().evict_digests().drain()) {
    if (flows_.count(d.slot) > 0) finalize_flow(d.slot, d.at);
  }
  for (const auto& d : program_.queue_monitor().microburst_digests().drain()) {
    microbursts_.push_back(d);
    emit(make_microburst_report(d));
    if (on_microburst_) on_microburst_(d);
  }
  for (const auto& d : program_.int_exporter().postcards().drain()) {
    util::Json j = util::Json::object();
    j["report"] = "int_postcard";
    j["ts_ns"] = static_cast<std::int64_t>(d.egress_ts);
    j["flow_id"] = static_cast<std::int64_t>(d.flow_id);
    j["queue_delay_ns"] = static_cast<std::int64_t>(d.queue_delay_ns);
    j["seq"] = static_cast<std::int64_t>(d.seq);
    emit(j);
  }
  for (const auto& d : program_.iat_monitor().blockage_digests().drain()) {
    auto it = flows_.find(d.slot);
    if (it != flows_.end()) {
      emit(make_blockage_report(d, it->second.flow));
    }
    if (on_blockage_) on_blockage_(d);
  }
  for (auto& source : digest_sources_) {
    std::vector<util::Json> docs = source(sim_.now());
    for (util::Json& doc : docs) emit(std::move(doc));
  }
}

void ControlPlane::scan_idle_flows() {
  if (driver_sync_) driver_sync_();
  const SimTime now = sim_.now();
  std::vector<std::uint16_t> expired;
  for (const auto& [slot, state] : flows_) {
    (void)state;
    const SimTime last = program_.last_seen(slot);
    if (last != 0 && now > last && now - last >= config_.flow_idle_timeout) {
      expired.push_back(slot);
    }
  }
  for (std::uint16_t slot : expired) finalize_flow(slot, now);
}

void ControlPlane::finalize_flow(std::uint16_t slot, SimTime end_ts) {
  auto it = flows_.find(slot);
  if (it == flows_.end()) return;

  FlowFinalReport report;
  report.flow = it->second.flow;
  report.start = program_.first_seen(slot);
  const SimTime last = program_.last_seen(slot);
  report.end = last != 0 ? last : end_ts;
  report.packets = program_.packets(slot);
  report.bytes = program_.bytes(slot);
  report.retransmissions = program_.rtt_loss().losses(slot);
  if (report.end > report.start) {
    report.avg_throughput_bps =
        static_cast<double>(report.bytes) * 8.0 /
        units::to_seconds(report.end - report.start);
  }
  if (report.packets > 0) {
    report.retransmission_pct = 100.0 *
                                static_cast<double>(report.retransmissions) /
                                static_cast<double>(report.packets);
  }
  report.rtt_p50_ms = util::percentile(it->second.rtt_samples_ms, 0.50);
  report.rtt_p95_ms = util::percentile(it->second.rtt_samples_ms, 0.95);
  report.rtt_p99_ms = util::percentile(it->second.rtt_samples_ms, 0.99);
  report.occupancy_p95_pct =
      util::percentile(it->second.occupancy_samples_pct, 0.95);
  final_reports_.push_back(report);
  util::Json final_doc = make_flow_final_report(
      report.flow, report.start, report.end, report.packets, report.bytes,
      report.avg_throughput_bps, report.retransmissions,
      report.retransmission_pct);
  final_doc["rtt_p50_ms"] = report.rtt_p50_ms;
  final_doc["rtt_p95_ms"] = report.rtt_p95_ms;
  final_doc["rtt_p99_ms"] = report.rtt_p99_ms;
  final_doc["occupancy_p95_pct"] = report.occupancy_p95_pct;
  emit(final_doc);
  program_.release_slot(slot);
  flows_.erase(it);
}

void ControlPlane::emit(util::Json report) {
  if (!config_.switch_id.empty()) report["switch_id"] = config_.switch_id;
  ++reports_emitted_;
  if (sink_ != nullptr) sink_->on_report(report);
}

}  // namespace p4s::cp
