// ResilientReportSink: the hardened control-plane end of the Report_v1
// path. Where LogstashTcpSink calls straight into Logstash and therefore
// can never fail, this sink ships reports over a net::ReportChannel that
// can chunk, stall, reset and push back — and survives all of it:
//
//   * every report gets a monotonically increasing "@xmit_seq" and is
//     framed as one JSON line (the real wire format);
//   * frames wait in a bounded outbound queue; on overflow the OLDEST
//     unacknowledged frame is dropped (graceful degradation — stale
//     telemetry is the least valuable, and the drop is counted);
//   * delivery is at-least-once: a frame is retransmitted after
//     ack_timeout until the receiver acknowledges its sequence number
//     (Logstash dedups by "@xmit_seq", so the archive sees each report
//     exactly once);
//   * send failures and reconnects back off exponentially with jitter
//     (util::ExponentialBackoff), resetting on progress;
//   * a channel disconnect triggers automatic reconnection;
//   * health counters (sent/retried/dropped/reconnects/...) are emitted
//     periodically THROUGH the same path as a "transport_health" report,
//     so degradation of the report wire is itself visible in the
//     archiver, next to the measurements it degraded.
//
// Acknowledgements arrive via on_ack(seq) — in the integrated system the
// Logstash side acks every sequence number it receives (dup or not) over
// a reliable return path; only the forward data path is fault-injected.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "controlplane/report.hpp"
#include "net/report_channel.hpp"
#include "sim/simulation.hpp"
#include "util/backoff.hpp"
#include "util/units.hpp"

namespace p4s::cp {

class ResilientReportSink : public ReportSink {
 public:
  struct Config {
    /// Outbound queue bound (frames); oldest dropped on overflow.
    std::size_t queue_capacity = 4096;
    /// A transmitted-but-unacked frame is retransmitted after this long.
    SimTime ack_timeout = units::milliseconds(200);
    /// Backoff policy for send failures and reconnect attempts.
    util::ExponentialBackoff::Config backoff;
    /// Health-report emission period; 0 disables health reports.
    SimTime health_interval = units::seconds(5);
    /// Seed for the jitter PRNG stream.
    std::uint64_t seed = 0xbacc0ff;
  };

  ResilientReportSink(sim::Simulation& sim, net::ReportChannel& channel,
                      Config config);
  /// Default configuration.
  ResilientReportSink(sim::Simulation& sim, net::ReportChannel& channel);

  ResilientReportSink(const ResilientReportSink&) = delete;
  ResilientReportSink& operator=(const ResilientReportSink&) = delete;

  /// Frame, sequence and enqueue one report (ReportSink interface).
  void on_report(const util::Json& report) override;

  /// Receiver acknowledgement for one "@xmit_seq". Idempotent; an ack
  /// for a frame we already gave up on (overflow-dropped) reclassifies
  /// it from dropped to delivered, keeping the conservation invariant
  /// dropped + archived == emitted exact.
  void on_ack(std::uint64_t seq);

  struct Health {
    std::uint64_t emitted = 0;        // reports handed to on_report
    std::uint64_t sent = 0;           // first transmissions accepted
    std::uint64_t retried = 0;        // re-transmissions accepted
    std::uint64_t acked = 0;          // frames confirmed delivered
    std::uint64_t dropped_overflow = 0;  // dropped oldest, never delivered
    std::uint64_t send_failures = 0;  // channel refused a frame
    std::uint64_t health_reports = 0; // self-reports emitted
    std::uint64_t queued = 0;         // currently waiting or unacked
  };
  const Health& health() const { return health_; }
  std::uint64_t reconnects() const { return channel_.reconnects(); }
  std::uint64_t next_seq() const { return next_seq_; }

  /// The health counters as a Report_v1 document (also emitted on the
  /// health_interval timer).
  util::Json make_health_report() const;

 private:
  struct Frame {
    std::string line;          // JSON + '\n'
    SimTime last_tx = 0;       // 0 = never transmitted
    std::uint32_t tx_count = 0;
  };

  void pump();
  void schedule_pump(SimTime delay);
  void schedule_reconnect();
  void emit_health();

  sim::Simulation& sim_;
  net::ReportChannel& channel_;
  Config config_;
  sim::Rng rng_;
  util::ExponentialBackoff send_backoff_;
  util::ExponentialBackoff reconnect_backoff_;

  std::map<std::uint64_t, Frame> outbound_;  // seq -> frame, ack-pruned
  std::set<std::uint64_t> dropped_;          // overflow victims by seq
  std::uint64_t next_seq_ = 0;
  Health health_;

  bool pump_scheduled_ = false;
  SimTime pump_at_ = 0;
  bool reconnect_scheduled_ = false;
};

}  // namespace p4s::cp
