// quic_rtt extractor + NIDS digest source: the control-plane face of
// the encrypted-traffic engines.
//
// The spin-bit engine becomes one switch-wide extraction timer named
// "quic_rtt" through the same register_extractor() seam the paper
// metrics use (run-time rate configuration, alerting and boosting apply
// unchanged). Headline value: median spin RTT in milliseconds — the
// spin signal is noisy at the tail by construction, so the median is
// the robust figure the experiments compare against ground truth; p95,
// sample and rejection counters ride as annotations.
//
// The NIDS feature engine exports through the digest path instead: its
// per-flow feature documents and classifier alerts are drained by the
// control plane's digest poll and shipped as reports (the archive tags
// attacks via report=nids_alert).
#pragma once

#include "controlplane/control_plane.hpp"
#include "telemetry/dataplane_program.hpp"

namespace p4s::cp {

/// Register the "quic_rtt" extractor for the program's spin-bit engine
/// (no-op when the program was built without one).
void register_quic_rtt_extractor(ControlPlane& cp,
                                 const telemetry::DataPlaneProgram& program,
                                 MetricConfig config = {});

/// Register the NIDS feature/alert digest source (no-op when the
/// program was built without the NIDS engine). The program must outlive
/// the control plane.
void register_nids_digest_source(ControlPlane& cp,
                                 telemetry::DataPlaneProgram& program);

}  // namespace p4s::cp
