#include "controlplane/report.hpp"

#include <stdexcept>

namespace p4s::cp {

const char* metric_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kThroughput: return "throughput";
    case MetricKind::kPacketLoss: return "packet_loss";
    case MetricKind::kRtt: return "rtt";
    case MetricKind::kQueueOccupancy: return "queue_occupancy";
  }
  return "?";
}

MetricKind metric_from_name(const std::string& name) {
  if (name == "throughput") return MetricKind::kThroughput;
  if (name == "packet_loss") return MetricKind::kPacketLoss;
  if (name == "rtt" || name == "RTT") return MetricKind::kRtt;
  if (name == "queue_occupancy") return MetricKind::kQueueOccupancy;
  throw std::invalid_argument("unknown metric: " + name);
}

util::Json flow_json(const telemetry::FlowIdentity& flow) {
  util::Json j = util::Json::object();
  j["id"] = static_cast<std::int64_t>(flow.flow_id);
  j["rev_id"] = static_cast<std::int64_t>(flow.rev_flow_id);
  j["src_ip"] = net::to_string(flow.tuple.src_ip);
  j["dst_ip"] = net::to_string(flow.tuple.dst_ip);
  j["src_port"] = static_cast<std::int64_t>(flow.tuple.src_port);
  j["dst_port"] = static_cast<std::int64_t>(flow.tuple.dst_port);
  j["protocol"] = static_cast<std::int64_t>(flow.tuple.protocol);
  return j;
}

namespace {
util::Json base(const char* report, SimTime ts) {
  util::Json j = util::Json::object();
  j["report"] = report;
  j["ts_ns"] = static_cast<std::int64_t>(ts);
  return j;
}
}  // namespace

util::Json make_metric_report(MetricKind kind,
                              const telemetry::FlowIdentity& flow,
                              SimTime ts, double value,
                              const char* value_key) {
  return make_metric_report(metric_name(kind), flow, ts, value, value_key);
}

util::Json make_metric_report(const char* metric,
                              const telemetry::FlowIdentity& flow,
                              SimTime ts, double value,
                              const char* value_key) {
  util::Json j = base(metric, ts);
  j["flow"] = flow_json(flow);
  j[value_key] = value;
  return j;
}

util::Json make_switch_metric_report(const char* metric, SimTime ts,
                                     double value, const char* value_key) {
  util::Json j = base(metric, ts);
  j[value_key] = value;
  return j;
}

util::Json make_flow_detected_report(const telemetry::FlowIdentity& flow,
                                     SimTime ts) {
  util::Json j = base("flow_detected", ts);
  j["flow"] = flow_json(flow);
  return j;
}

util::Json make_flow_final_report(const telemetry::FlowIdentity& flow,
                                  SimTime start, SimTime end,
                                  std::uint64_t packets, std::uint64_t bytes,
                                  double avg_throughput_bps,
                                  std::uint64_t retransmissions,
                                  double retransmission_pct) {
  util::Json j = base("flow_final", end);
  j["flow"] = flow_json(flow);
  j["start_ns"] = static_cast<std::int64_t>(start);
  j["end_ns"] = static_cast<std::int64_t>(end);
  j["packets"] = static_cast<std::int64_t>(packets);
  j["bytes"] = static_cast<std::int64_t>(bytes);
  j["avg_throughput_bps"] = avg_throughput_bps;
  j["retransmissions"] = static_cast<std::int64_t>(retransmissions);
  j["retransmission_pct"] = retransmission_pct;
  return j;
}

util::Json make_microburst_report(const telemetry::MicroburstDigest& d) {
  util::Json j = base("microburst", d.start_ns);
  j["start_ns"] = static_cast<std::int64_t>(d.start_ns);
  j["duration_ns"] = static_cast<std::int64_t>(d.duration_ns);
  j["peak_queue_delay_ns"] =
      static_cast<std::int64_t>(d.peak_queue_delay_ns);
  j["packets_in_burst"] = static_cast<std::int64_t>(d.packets_in_burst);
  return j;
}

util::Json make_blockage_report(const telemetry::BlockageDigest& d,
                                const telemetry::FlowIdentity& flow) {
  util::Json j = base("blockage", d.at);
  j["flow"] = flow_json(flow);
  j["iat_ns"] = static_cast<std::int64_t>(d.iat_ns);
  j["baseline_iat_ns"] = static_cast<std::int64_t>(d.baseline_iat_ns);
  return j;
}

util::Json make_limitation_report(const telemetry::FlowIdentity& flow,
                                  SimTime ts, telemetry::LimitVerdict v,
                                  std::uint64_t flight_bytes) {
  util::Json j = base("limitation", ts);
  j["flow"] = flow_json(flow);
  j["verdict"] = telemetry::to_string(v);
  j["flight_bytes"] = static_cast<std::int64_t>(flight_bytes);
  return j;
}

util::Json make_aggregate_report(SimTime ts, double link_utilization,
                                 std::optional<double> fairness,
                                 std::size_t active_flows,
                                 std::uint64_t total_bytes,
                                 std::uint64_t total_packets,
                                 double total_throughput_bps) {
  util::Json j = base("aggregate", ts);
  j["link_utilization"] = link_utilization;
  // JSON null while the link is idle: the index is undefined, and a
  // dashboard must not plot it as perfect fairness.
  j["fairness"] = fairness.has_value() ? util::Json(*fairness)
                                       : util::Json(nullptr);
  j["active_flows"] = static_cast<std::int64_t>(active_flows);
  j["total_bytes"] = static_cast<std::int64_t>(total_bytes);
  j["total_packets"] = static_cast<std::int64_t>(total_packets);
  j["total_throughput_bps"] = total_throughput_bps;
  return j;
}

util::Json make_alert_report(MetricKind kind,
                             const telemetry::FlowIdentity& flow, SimTime ts,
                             double value, double threshold) {
  return make_alert_report(metric_name(kind), flow, ts, value, threshold);
}

util::Json make_alert_report(const char* metric,
                             const telemetry::FlowIdentity& flow, SimTime ts,
                             double value, double threshold) {
  util::Json j = base("alert", ts);
  j["metric"] = metric;
  j["flow"] = flow_json(flow);
  j["value"] = value;
  j["threshold"] = threshold;
  return j;
}

}  // namespace p4s::cp
