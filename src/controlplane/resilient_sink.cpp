#include "controlplane/resilient_sink.hpp"

#include <algorithm>
#include <limits>

namespace p4s::cp {

ResilientReportSink::ResilientReportSink(sim::Simulation& sim,
                                         net::ReportChannel& channel)
    : ResilientReportSink(sim, channel, Config{}) {}

ResilientReportSink::ResilientReportSink(sim::Simulation& sim,
                                         net::ReportChannel& channel,
                                         Config config)
    : sim_(sim),
      channel_(channel),
      config_(config),
      rng_(config.seed),
      send_backoff_(config.backoff),
      reconnect_backoff_(config.backoff) {
  channel_.on_disconnect([this]() { schedule_reconnect(); });
  channel_.connect();
  if (config_.health_interval > 0) {
    sim_.every(sim_.now() + config_.health_interval, config_.health_interval,
               [this]() {
                 emit_health();
                 return true;
               });
  }
}

void ResilientReportSink::on_report(const util::Json& report) {
  ++health_.emitted;
  const std::uint64_t seq = next_seq_++;
  util::Json framed = report;
  if (framed.is_object()) {
    framed["@xmit_seq"] = static_cast<std::int64_t>(seq);
  }
  if (outbound_.size() >= config_.queue_capacity && !outbound_.empty()) {
    // Graceful degradation: shed the OLDEST frame — stale telemetry is
    // worth the least, and newer reports supersede it on dashboards.
    auto oldest = outbound_.begin();
    dropped_.insert(oldest->first);
    ++health_.dropped_overflow;
    outbound_.erase(oldest);
  }
  outbound_.emplace(seq, Frame{framed.dump() + "\n", 0, 0});
  health_.queued = outbound_.size();
  pump();
}

void ResilientReportSink::on_ack(std::uint64_t seq) {
  auto it = outbound_.find(seq);
  if (it != outbound_.end()) {
    outbound_.erase(it);
    ++health_.acked;
    health_.queued = outbound_.size();
    send_backoff_.reset();
    return;
  }
  if (dropped_.erase(seq) > 0) {
    // The frame was overflow-dropped after transmission but arrived
    // anyway: it was delivered, not lost.
    --health_.dropped_overflow;
    ++health_.acked;
  }
  // Otherwise: duplicate ack for an already-acked frame; ignore.
}

void ResilientReportSink::pump() {
  if (outbound_.empty()) return;
  if (!channel_.connected()) {
    schedule_reconnect();
    return;
  }
  const SimTime now = sim_.now();
  SimTime next_deadline = std::numeric_limits<SimTime>::max();
  bool progress = false;
  for (auto& [seq, frame] : outbound_) {
    if (frame.tx_count > 0 && now - frame.last_tx < config_.ack_timeout) {
      next_deadline = std::min(next_deadline,
                               frame.last_tx + config_.ack_timeout);
      continue;
    }
    if (!channel_.send(frame.line)) {
      ++health_.send_failures;
      schedule_pump(send_backoff_.next(rng_.next_double()));
      return;
    }
    if (frame.tx_count == 0) {
      ++health_.sent;
    } else {
      ++health_.retried;
    }
    ++frame.tx_count;
    frame.last_tx = now;
    next_deadline = std::min(next_deadline, now + config_.ack_timeout);
    progress = true;
  }
  if (progress) send_backoff_.reset();
  if (next_deadline != std::numeric_limits<SimTime>::max()) {
    schedule_pump(next_deadline - now);
  }
}

void ResilientReportSink::schedule_pump(SimTime delay) {
  const SimTime target = sim_.now() + delay;
  if (pump_scheduled_ && pump_at_ <= target) return;
  pump_scheduled_ = true;
  pump_at_ = target;
  sim_.at(target, [this, target]() {
    if (pump_at_ == target) pump_scheduled_ = false;
    pump();
  });
}

void ResilientReportSink::schedule_reconnect() {
  if (reconnect_scheduled_) return;
  if (channel_.connected()) {
    pump();
    return;
  }
  reconnect_scheduled_ = true;
  sim_.after(reconnect_backoff_.next(rng_.next_double()), [this]() {
    reconnect_scheduled_ = false;
    if (!channel_.connected()) {
      channel_.connect();
      reconnect_backoff_.reset();
    }
    pump();
  });
}

util::Json ResilientReportSink::make_health_report() const {
  util::Json doc = util::Json::object();
  doc["report"] = "transport_health";
  doc["ts_ns"] = static_cast<std::int64_t>(sim_.now());
  doc["emitted"] = static_cast<std::int64_t>(health_.emitted);
  doc["sent"] = static_cast<std::int64_t>(health_.sent);
  doc["retried"] = static_cast<std::int64_t>(health_.retried);
  doc["acked"] = static_cast<std::int64_t>(health_.acked);
  doc["dropped"] = static_cast<std::int64_t>(health_.dropped_overflow);
  doc["send_failures"] = static_cast<std::int64_t>(health_.send_failures);
  doc["reconnects"] = static_cast<std::int64_t>(reconnects());
  doc["queued"] = static_cast<std::int64_t>(health_.queued);
  return doc;
}

void ResilientReportSink::emit_health() {
  ++health_.health_reports;
  on_report(make_health_report());
}

}  // namespace p4s::cp
