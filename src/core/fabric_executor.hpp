// FabricExecutor — the parallel runtime of the monitoring fabric.
//
// In serial mode every monitored switch's mirror pipeline (TAP delivery
// -> capture tee -> P4 parser -> data-plane program) executes inline on
// the one simulation timeline. The executor moves exactly that pipeline
// — the dominant per-packet cost, and the only part of a site that is
// independent of every other site — onto per-switch *shards*, each
// advancing its own sim::Simulation on a ShardPool worker thread.
// Everything that interacts stays on the main timeline: the topology,
// TCP, the control planes, the report transport, the archiver. That
// split is what keeps seeded runs byte-identical at any worker count:
// the main timeline's event order is untouched (mirror copies are handed
// across a boundary instead of being scheduled), and a shard's outputs
// are a pure function of its ordered boundary stream.
//
// Protocol per shard (see sim/shard_pool.hpp for the memory-ordering
// contract):
//   * the TAP pushes MirrorFrames (serialized bytes + delivery
//     timestamp = mirror time + tap latency) into a lock-free SPSC
//     inbox, in non-decreasing timestamp order;
//   * a recurring *grant pump* on the main timeline publishes lookahead
//     grants of main_now - 1 — safe because a frame mirrored at main
//     time T cannot be delivered before T + tap_latency > T - 1;
//   * the shard drains its inbox up to the grant, advancing its own
//     clock to each frame's delivery time before feeding the sink (so
//     P4 ingress timestamps and pcap records match the serial run) and
//     merging local events first at equal timestamps — the serial
//     queue's FIFO rule, where a driver tick scheduled a full interval
//     earlier always precedes a delivery scheduled tap_latency earlier;
//   * a control plane about to read data-plane registers at main time T
//     calls sync(): a barrier to T - 1, exactly the set of deliveries a
//     serial run would have executed before a tick at T;
//   * run_until(t) ends with an inclusive barrier_all(t), after which
//     reading any shard-owned state from the main thread is race-free.
//
// A full inbox never deadlocks: push() publishes the maximal safe grant
// (frame.at - 1 — every later frame is mirrored no earlier than this
// one, so its delivery is no earlier either), kicks the worker and
// waits for space; only frames due at exactly the same nanosecond can
// remain ungrantable, and a site cannot mirror a ring's worth of copies
// in one instant.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/tap.hpp"
#include "sim/shard_pool.hpp"
#include "sim/simulation.hpp"

namespace p4s::core {

class FabricExecutor {
 public:
  struct Config {
    /// Worker threads advancing the shards (clamped to the shard count).
    std::size_t workers = 2;
    /// Period of the grant pump on the main timeline. Smaller = workers
    /// trail the main clock more closely; larger = fewer main-loop
    /// events. Purely a throughput knob — correctness and outputs are
    /// invariant under it.
    SimTime grant_period = units::microseconds(500);
    /// Test-only: forwarded to ShardPool (randomized worker stalls for
    /// the determinism battery).
    std::uint64_t scheduling_jitter_seed = 0;
  };

  FabricExecutor(sim::Simulation& main_sim, Config config);
  ~FabricExecutor();

  FabricExecutor(const FabricExecutor&) = delete;
  FabricExecutor& operator=(const FabricExecutor&) = delete;

  /// Register one monitored switch's pipeline: frames pushed into
  /// boundary(id) replay against `pipeline_sim`'s clock into `entry`
  /// (the capture tee or the P4 switch). Call before start().
  std::size_t add_switch(sim::Simulation& pipeline_sim,
                         net::MirrorSink& entry);

  /// The producer end the TAP pair should push into.
  net::MirrorBoundary& boundary(std::size_t shard);

  /// Launch the workers and schedule the grant pump. Idempotent.
  void start();
  /// Stop and join the workers (destructor calls this too).
  void stop();

  /// Driver-read barrier: the shard has executed every delivery
  /// strictly before the main clock's current time.
  void sync(std::size_t shard);
  /// Inclusive end-of-window barrier: every shard has executed every
  /// delivery with timestamp <= t. After this, shard-owned state is
  /// readable from the calling thread until the pump next fires.
  void barrier_all(SimTime t);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t worker_count() const { return pool_.worker_count(); }
  /// Frames delivered into shard `shard`'s sink. Only meaningful after
  /// a barrier (sync/barrier_all) — the barrier is the happens-before
  /// edge that makes the read race-free.
  std::uint64_t frames_delivered(std::size_t shard) const;
  /// Producer-side stalls on a full inbox (main-thread telemetry).
  std::uint64_t blocked_pushes() const;
  /// Barriers that had to block on a trailing worker.
  std::uint64_t barrier_waits() const { return pool_.barrier_waits(); }

 private:
  class SwitchShard;

  sim::Simulation& main_sim_;
  Config config_;
  sim::ShardPool pool_;
  std::vector<std::unique_ptr<SwitchShard>> shards_;
  bool started_ = false;
};

}  // namespace p4s::core
