// Self-contained SVG time-series renderer — the repository's stand-in
// for the paper's Grafana dashboards (§5.1). Renders a Recorder metric
// (one line per flow, labelled axes, legend, auto-scaled) into a single
// .svg file viewable in any browser; Figure-9-style panels come out of
// chart_for() + write_svg().
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace p4s::core {

struct ChartSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct Chart {
  std::string title;
  std::string x_label = "time (s)";
  std::string y_label;
  std::vector<ChartSeries> series;
  int width = 760;
  int height = 360;
  /// Force y-axis minimum to zero (throughput/occupancy panels).
  bool y_from_zero = true;
};

/// Render the chart as a standalone SVG document.
void write_svg(const Chart& chart, std::ostream& out);

/// Build a chart from a recorder metric, one series per flow label.
Chart chart_for(const Recorder& recorder, const std::string& title,
                double FlowSample::*metric, const std::string& y_label);

/// Build the four Figure-9 panels (throughput / RTT / queue occupancy /
/// loss %) and write them into one SVG document stacked vertically.
void write_fig9_panels(const Recorder& recorder, std::ostream& out);

}  // namespace p4s::core
