#include "core/config_loader.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "mpl/compiler.hpp"

namespace p4s::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("config: " + what);
}

double require_number(const util::Json& v, const std::string& key) {
  if (!v.is_number()) fail("'" + key + "' must be a number");
  return v.as_double();
}

bool require_bool(const util::Json& v, const std::string& key) {
  if (!v.is_bool()) fail("'" + key + "' must be a boolean");
  return v.as_bool();
}

net::FaultInjector::ScheduledFault parse_fault(const util::Json& entry,
                                               std::size_t index) {
  const std::string where =
      "transport.faults[" + std::to_string(index) + "]";
  if (!entry.is_object()) fail("'" + where + "' must be an object");
  net::FaultInjector::ScheduledFault fault;
  bool has_at = false;
  for (const auto& [k, v] : entry.as_object()) {
    if (k == "at_s") {
      fault.at = units::seconds_f(require_number(v, where + ".at_s"));
      has_at = true;
    } else if (k == "kind") {
      if (!v.is_string()) fail("'" + where + ".kind' must be a string");
      const std::string& kind = v.as_string();
      if (kind == "reset") {
        fault.kind = net::FaultInjector::FaultKind::kReset;
      } else if (kind == "stall") {
        fault.kind = net::FaultInjector::FaultKind::kStall;
      } else {
        fail("'" + where + ".kind' must be 'reset' or 'stall'");
      }
    } else if (k == "duration_s") {
      fault.duration =
          units::seconds_f(require_number(v, where + ".duration_s"));
    } else {
      fail("unknown key '" + where + "." + k + "'");
    }
  }
  if (!has_at) fail("'" + where + "' needs 'at_s'");
  if (fault.kind == net::FaultInjector::FaultKind::kStall &&
      fault.duration == 0) {
    fail("'" + where + "' stall needs a 'duration_s' > 0");
  }
  return fault;
}

/// Parse an array of measurement-program documents at `where` (e.g.
/// "programs" or "switches[1].programs") through the mpl compiler; the
/// compiler's diagnostics already carry the full JSON path of the
/// offending key ("switches[1].programs[0].ops[2].field").
std::vector<mpl::Program> parse_programs(const util::Json& v,
                                         const std::string& where) {
  if (!v.is_array()) fail("'" + where + "' must be an array");
  std::vector<mpl::Program> programs;
  const auto& entries = v.as_array();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    try {
      programs.push_back(mpl::compile_program(
          entries[i], where + "[" + std::to_string(i) + "]"));
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  return programs;
}

/// Walk an object's keys, dispatching each to `apply`; unknown keys fail.
template <typename Apply>
void walk(const util::Json& obj, const std::string& section, Apply&& apply) {
  if (!obj.is_object()) fail("'" + section + "' must be an object");
  for (const auto& [key, value] : obj.as_object()) {
    if (!apply(key, value)) {
      fail("unknown key '" + section + "." + key + "'");
    }
  }
}

}  // namespace

MonitoringSystemConfig config_from_json(const util::Json& doc) {
  MonitoringSystemConfig config;
  if (!doc.is_object()) fail("document must be an object");

  for (const auto& [key, value] : doc.as_object()) {
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(
          require_number(value, key));
    } else if (key == "tap_latency_us") {
      config.tap_latency = units::seconds_f(
          require_number(value, key) / 1e6);
    } else if (key == "topology") {
      walk(value, "topology", [&](const std::string& k,
                                  const util::Json& v) {
        if (k == "bottleneck_mbps") {
          config.topology.bottleneck_bps = static_cast<std::uint64_t>(
              require_number(v, "topology." + k) * 1e6);
        } else if (k == "access_mbps") {
          config.topology.access_bps = static_cast<std::uint64_t>(
              require_number(v, "topology." + k) * 1e6);
        } else if (k == "rtt_ms") {
          if (!v.is_array() || v.size() != 3) {
            fail("'topology.rtt_ms' must be an array of 3 numbers");
          }
          for (std::size_t i = 0; i < 3; ++i) {
            config.topology.rtt[i] = units::seconds_f(
                require_number(v.as_array()[i],
                               "topology.rtt_ms[" + std::to_string(i) +
                                   "]") /
                1e3);
          }
        } else if (k == "core_buffer_bytes") {
          config.topology.core_buffer_bytes =
              static_cast<std::uint64_t>(require_number(v, "topology." + k));
        } else if (k == "core_buffer_bdp_of_rtt_ms") {
          // JsonObject iterates keys alphabetically, so
          // "bottleneck_mbps" has already been applied when this
          // resolves ('b' < 'c').
          config.topology.core_buffer_bytes = units::bdp_bytes(
              config.topology.bottleneck_bps,
              units::seconds_f(require_number(v, "topology." + k) / 1e3));
        } else {
          return false;
        }
        return true;
      });
    } else if (key == "program") {
      walk(value, "program", [&](const std::string& k,
                                 const util::Json& v) {
        if (k == "promotion_kb") {
          config.program.tracker.promotion_bytes = static_cast<std::uint64_t>(
              require_number(v, "program." + k) * 1024);
        } else if (k == "burst_threshold_us") {
          config.program.queue.burst_threshold_ns = units::seconds_f(
              require_number(v, "program." + k) / 1e6);
          config.program.queue.burst_exit_ns =
              config.program.queue.burst_threshold_ns / 2;
        } else if (k == "int_sample_every") {
          const auto n =
              static_cast<std::uint32_t>(require_number(v, "program." + k));
          config.program.int_export.enabled = n > 0;
          if (n > 0) config.program.int_export.sample_every = n;
        } else if (k == "iat_min_gap_ms") {
          config.program.iat.min_gap_ns = units::seconds_f(
              require_number(v, "program." + k) / 1e3);
        } else {
          return false;
        }
        return true;
      });
    } else if (key == "transport") {
      walk(value, "transport", [&](const std::string& k,
                                   const util::Json& v) {
        auto& t = config.transport;
        if (k == "resilient") {
          t.resilient = require_bool(v, "transport." + k);
        } else if (k == "latency_us") {
          t.channel.latency = units::seconds_f(require_number(v, "transport." + k) / 1e6);
        } else if (k == "send_buffer_kb") {
          t.channel.send_buffer_bytes =
              static_cast<std::uint64_t>(require_number(v, "transport." + k) * 1024);
        } else if (k == "drain_kbps") {
          t.channel.drain_bps =
              static_cast<std::uint64_t>(require_number(v, "transport." + k) * 1000);
        } else if (k == "max_chunk_bytes") {
          t.channel.max_chunk_bytes =
              static_cast<std::uint64_t>(require_number(v, "transport." + k));
        } else if (k == "random_chunking") {
          t.channel.random_chunking = require_bool(v, "transport." + k);
        } else if (k == "queue_capacity") {
          t.sink.queue_capacity =
              static_cast<std::size_t>(require_number(v, "transport." + k));
        } else if (k == "ack_timeout_ms") {
          t.sink.ack_timeout = units::seconds_f(require_number(v, "transport." + k) / 1e3);
        } else if (k == "retry_base_ms") {
          t.sink.backoff.base = units::seconds_f(require_number(v, "transport." + k) / 1e3);
        } else if (k == "retry_max_ms") {
          t.sink.backoff.max = units::seconds_f(require_number(v, "transport." + k) / 1e3);
        } else if (k == "health_interval_s") {
          t.sink.health_interval = units::seconds_f(require_number(v, "transport." + k));
        } else if (k == "faults") {
          if (!v.is_array()) fail("'transport.faults' must be an array");
          const auto& entries = v.as_array();
          for (std::size_t i = 0; i < entries.size(); ++i) {
            t.faults.push_back(parse_fault(entries[i], i));
          }
        } else {
          return false;
        }
        return true;
      });
      if (!config.transport.faults.empty() && !config.transport.resilient) {
        fail("'transport.faults' requires 'transport.resilient': true "
             "(the legacy direct wire has no fault surface)");
      }
    } else if (key == "trace") {
      walk(value, "trace", [&](const std::string& k, const util::Json& v) {
        if (k == "capture") {
          config.trace.capture = require_bool(v, "trace." + k);
        } else if (k == "path_base") {
          if (!v.is_string()) fail("'trace.path_base' must be a string");
          config.trace.path_base = v.as_string();
        } else if (k == "snaplen") {
          config.trace.snaplen =
              static_cast<std::uint32_t>(require_number(v, "trace." + k));
        } else {
          return false;
        }
        return true;
      });
    } else if (key == "archive") {
      walk(value, "archive", [&](const std::string& k,
                                 const util::Json& v) {
        auto& a = config.archive;
        if (k == "backend") {
          if (!v.is_string()) fail("'archive.backend' must be a string");
          const std::string& backend = v.as_string();
          if (backend == "store") {
            a.durable = true;
          } else if (backend == "memory") {
            a.durable = false;
          } else {
            fail("'archive.backend' must be 'memory' or 'store'");
          }
        } else if (k == "dir") {
          if (!v.is_string()) fail("'archive.dir' must be a string");
          a.dir = v.as_string();
        } else if (k == "time_field") {
          if (!v.is_string()) fail("'archive.time_field' must be a string");
          a.store.time_field = v.as_string();
        } else if (k == "hot_fields") {
          if (!v.is_array()) fail("'archive.hot_fields' must be an array");
          a.store.hot_fields.clear();
          for (const auto& f : v.as_array()) {
            if (!f.is_string()) {
              fail("'archive.hot_fields' entries must be strings");
            }
            a.store.hot_fields.push_back(f.as_string());
          }
        } else if (k == "wal_batch_docs") {
          a.store.wal_batch_docs =
              static_cast<std::size_t>(require_number(v, "archive." + k));
        } else if (k == "seal_min_docs") {
          a.store.seal_min_docs =
              static_cast<std::size_t>(require_number(v, "archive." + k));
        } else if (k == "compact_fanin") {
          a.store.compact_fanin =
              static_cast<std::size_t>(require_number(v, "archive." + k));
        } else if (k == "rollup_bucket_s") {
          a.store.rollup_bucket_ns = static_cast<std::uint64_t>(
              require_number(v, "archive." + k) * 1e9);
        } else if (k == "rollup_fields") {
          if (!v.is_array()) {
            fail("'archive.rollup_fields' must be an array");
          }
          for (const auto& f : v.as_array()) {
            if (!f.is_string()) {
              fail("'archive.rollup_fields' entries must be strings");
            }
            a.store.rollup_fields.push_back(f.as_string());
          }
        } else if (k == "maintenance_interval_s") {
          a.maintenance_interval =
              units::seconds_f(require_number(v, "archive." + k));
        } else {
          return false;
        }
        return true;
      });
      if (config.archive.durable && config.archive.dir.empty()) {
        fail("'archive.backend': 'store' requires 'archive.dir'");
      }
    } else if (key == "serving") {
      walk(value, "serving", [&](const std::string& k,
                                 const util::Json& v) {
        auto& s = config.serving;
        if (k == "enabled") {
          s.enabled = require_bool(v, "serving." + k);
        } else if (k == "cache_bytes") {
          s.cache_bytes = static_cast<std::size_t>(require_number(v, "serving." + k));
        } else if (k == "cache_shards") {
          s.cache_shards = static_cast<std::size_t>(require_number(v, "serving." + k));
          if (s.cache_shards == 0) {
            fail("'serving.cache_shards' must be at least 1");
          }
        } else if (k == "reader_threads") {
          s.reader_threads = static_cast<std::size_t>(require_number(v, "serving." + k));
        } else {
          return false;
        }
        return true;
      });
      if (config.serving.enabled && !config.archive.durable) {
        fail("'serving.enabled' requires 'archive.backend': 'store'");
      }
    } else if (key == "switches") {
      // Two accepted shapes: the legacy bare array of site entries, or
      // an object {"parallel": N, "sites": [...]} that also selects the
      // sharded parallel runtime (N workers; 1 = serial).
      auto parse_sites = [&](const util::Json& sites) {
        if (!sites.is_array()) fail("'switches' sites must be an array");
        const auto& entries = sites.as_array();
        for (std::size_t i = 0; i < entries.size(); ++i) {
          const std::string where = "switches[" + std::to_string(i) + "]";
          MonitoredSwitchConfig sw;
          walk(entries[i], where, [&](const std::string& k,
                                      const util::Json& v) {
            if (k == "id") {
              if (!v.is_string()) fail("'" + where + ".id' must be a string");
              sw.id = v.as_string();
            } else if (k == "tap") {
              if (!v.is_string()) {
                fail("'" + where + ".tap' must be a string");
              }
              try {
                sw.tap = tap_point_from_name(v.as_string());
              } catch (const std::invalid_argument& e) {
                fail("'" + where + ".tap': " + e.what());
              }
            } else if (k == "programs") {
              sw.programs = parse_programs(v, where + ".programs");
            } else {
              return false;
            }
            return true;
          });
          config.switches.push_back(std::move(sw));
        }
      };
      if (value.is_array()) {
        parse_sites(value);
      } else if (value.is_object()) {
        walk(value, "switches", [&](const std::string& k,
                                    const util::Json& v) {
          if (k == "parallel") {
            const double n = require_number(v, "switches." + k);
            if (n < 1 || n != static_cast<std::size_t>(n)) {
              fail("'switches.parallel' must be a positive integer");
            }
            config.parallel = static_cast<std::size_t>(n);
          } else if (k == "sites") {
            parse_sites(v);
          } else {
            return false;
          }
          return true;
        });
      } else {
        fail("'switches' must be an array or an object with 'sites'");
      }
    } else if (key == "telemetry") {
      // Flow-table selection and switch-wide histogram engines. The keys
      // of the section object iterate alphabetically ("cuckoo" <
      // "flow_table" < "histograms" < "sketch_alpha"), so the settings
      // are collected first and applied after the walk.
      bool saw_cuckoo = false;
      std::optional<double> sketch_alpha;
      struct HistEntry {
        telemetry::HistogramEngineConfig hc;
        bool has_alpha = false;
      };
      std::vector<HistEntry> hist_entries;
      walk(value, "telemetry", [&](const std::string& k,
                                   const util::Json& v) {
        auto& tracker = config.program.tracker;
        if (k == "flow_table") {
          if (!v.is_string()) {
            fail("'telemetry.flow_table' must be a string");
          }
          try {
            tracker.flow_table = telemetry::flow_table_from_name(
                v.as_string());
          } catch (const std::invalid_argument& e) {
            fail("'telemetry.flow_table': " + std::string(e.what()));
          }
        } else if (k == "cuckoo") {
          saw_cuckoo = true;
          walk(v, "telemetry.cuckoo", [&](const std::string& ck,
                                          const util::Json& cv) {
            if (ck == "ways") {
              const double n = require_number(cv, "telemetry.cuckoo." + ck);
              if (n < 2 || n > 8 || n != static_cast<std::size_t>(n)) {
                fail("'telemetry.cuckoo.ways' must be an integer in 2..8");
              }
              tracker.cuckoo.ways = static_cast<std::size_t>(n);
            } else if (ck == "max_kicks") {
              const double n = require_number(cv, "telemetry.cuckoo." + ck);
              if (n < 1 || n != static_cast<std::size_t>(n)) {
                fail("'telemetry.cuckoo.max_kicks' must be a positive "
                     "integer");
              }
              tracker.cuckoo.max_kicks = static_cast<std::size_t>(n);
            } else if (ck == "idle_age_s") {
              tracker.cuckoo.idle_age = units::seconds_f(
                  require_number(cv, "telemetry.cuckoo." + ck));
            } else {
              return false;
            }
            return true;
          });
        } else if (k == "sketch_alpha") {
          const double a = require_number(v, "telemetry." + k);
          if (!(a > 0.0 && a < 1.0)) {
            fail("'telemetry.sketch_alpha' must be in (0, 1)");
          }
          sketch_alpha = a;
        } else if (k == "spin_rtt") {
          // Enabling the section (even empty) builds the spin-bit RTT
          // engine with defaults.
          auto& sc = config.program.spin_rtt.emplace();
          walk(v, "telemetry.spin_rtt", [&](const std::string& sk,
                                            const util::Json& sv) {
            if (sk == "slots") {
              const double n =
                  require_number(sv, "telemetry.spin_rtt." + sk);
              if (n < 1 || n != static_cast<std::size_t>(n)) {
                fail("'telemetry.spin_rtt.slots' must be a positive "
                     "integer");
              }
              sc.slots = static_cast<std::size_t>(n);
            } else if (sk == "rtt_floor_us") {
              sc.rtt_floor_ns = units::seconds_f(
                  require_number(sv, "telemetry.spin_rtt." + sk) / 1e6);
            } else if (sk == "outlier_factor") {
              const double f =
                  require_number(sv, "telemetry.spin_rtt." + sk);
              if (!(f > 1.0)) {
                fail("'telemetry.spin_rtt.outlier_factor' must be > 1");
              }
              sc.outlier_factor = f;
            } else if (sk == "alpha") {
              const double a =
                  require_number(sv, "telemetry.spin_rtt." + sk);
              if (!(a > 0.0 && a < 1.0)) {
                fail("'telemetry.spin_rtt.alpha' must be in (0, 1)");
              }
              sc.sketch_alpha = a;
            } else {
              return false;
            }
            return true;
          });
        } else if (k == "nids") {
          auto& nc = config.program.nids.emplace();
          walk(v, "telemetry.nids", [&](const std::string& nk,
                                        const util::Json& nv) {
            auto positive = [&]() {
              const double n =
                  require_number(nv, "telemetry.nids." + nk);
              if (n < 1 || n != static_cast<std::uint64_t>(n)) {
                fail("'telemetry.nids." + nk +
                     "' must be a positive integer");
              }
              return n;
            };
            if (nk == "max_flows") {
              nc.max_flows = static_cast<std::size_t>(positive());
            } else if (nk == "syn_flood_syns") {
              nc.syn_flood_syns = static_cast<std::uint64_t>(positive());
            } else if (nk == "syn_flood_ratio") {
              const double r = require_number(nv, "telemetry.nids." + nk);
              if (!(r >= 1.0)) {
                fail("'telemetry.nids.syn_flood_ratio' must be >= 1");
              }
              nc.syn_flood_ratio = r;
            } else if (nk == "port_scan_ports") {
              nc.port_scan_ports = static_cast<std::size_t>(positive());
            } else if (nk == "min_window_packets") {
              nc.min_window_packets =
                  static_cast<std::uint64_t>(positive());
            } else if (nk == "window_ms") {
              nc.window = static_cast<SimTime>(
                  positive() * 1e6);  // ms -> ns
            } else {
              return false;
            }
            return true;
          });
        } else if (k == "histograms") {
          if (!v.is_array()) {
            fail("'telemetry.histograms' must be an array");
          }
          const auto& entries = v.as_array();
          for (std::size_t i = 0; i < entries.size(); ++i) {
            const std::string where =
                "telemetry.histograms[" + std::to_string(i) + "]";
            HistEntry entry;
            bool has_metric = false;
            walk(entries[i], where, [&](const std::string& hk,
                                        const util::Json& hv) {
              auto& hc = entry.hc;
              if (hk == "metric") {
                if (!hv.is_string()) {
                  fail("'" + where + ".metric' must be a string");
                }
                try {
                  hc.metric =
                      telemetry::histogram_metric_from_name(hv.as_string());
                } catch (const std::invalid_argument& e) {
                  fail("'" + where + ".metric': " + std::string(e.what()));
                }
                has_metric = true;
              } else if (hk == "id") {
                if (!hv.is_string()) {
                  fail("'" + where + ".id' must be a string");
                }
                hc.id = hv.as_string();
              } else if (hk == "scale") {
                if (!hv.is_string()) {
                  fail("'" + where + ".scale' must be a string");
                }
                try {
                  hc.histogram.scale =
                      sketch::histogram_scale_from_name(hv.as_string());
                } catch (const std::invalid_argument& e) {
                  fail("'" + where + ".scale': " + std::string(e.what()));
                }
              } else if (hk == "min_us") {
                hc.histogram.min = require_number(hv, where + "." + hk) * 1e3;  // -> ns
              } else if (hk == "max_ms") {
                hc.histogram.max = require_number(hv, where + "." + hk) * 1e6;  // -> ns
              } else if (hk == "bins") {
                const double n = require_number(hv, where + "." + hk);
                if (n < 1 || n != static_cast<std::size_t>(n)) {
                  fail("'" + where + ".bins' must be a positive integer");
                }
                hc.histogram.bins = static_cast<std::size_t>(n);
              } else if (hk == "alpha") {
                const double a = require_number(hv, where + "." + hk);
                if (!(a > 0.0 && a < 1.0)) {
                  fail("'" + where + ".alpha' must be in (0, 1)");
                }
                hc.sketch_alpha = a;
                entry.has_alpha = true;
              } else {
                return false;
              }
              return true;
            });
            if (!has_metric) fail("'" + where + "' needs 'metric'");
            if (!(entry.hc.histogram.min > 0.0 &&
                  entry.hc.histogram.min < entry.hc.histogram.max)) {
              fail("'" + where + "' bin range must satisfy 0 < min < max");
            }
            hist_entries.push_back(std::move(entry));
          }
        } else {
          return false;
        }
        return true;
      });
      if (saw_cuckoo && config.program.tracker.flow_table !=
                            telemetry::FlowTableKind::kCuckoo) {
        fail("'telemetry.cuckoo' requires 'telemetry.flow_table': "
             "'cuckoo'");
      }
      for (auto& entry : hist_entries) {
        if (!entry.has_alpha && sketch_alpha.has_value()) {
          entry.hc.sketch_alpha = *sketch_alpha;
        }
        config.program.histograms.push_back(std::move(entry.hc));
      }
    } else if (key == "programs") {
      // Fabric-wide measurement programs, installed on every site's VM.
      config.programs = parse_programs(value, "programs");
    } else if (key == "workloads") {
      // Declarative traffic generators (workload/generators): resolved
      // against topology host names when the MonitoringSystem is built.
      if (!value.is_array()) fail("'workloads' must be an array");
      const auto& entries = value.as_array();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::string where = "workloads[" + std::to_string(i) + "]";
        workload::WorkloadSpec spec;
        bool has_kind = false;
        walk(entries[i], where, [&](const std::string& k,
                                    const util::Json& v) {
          if (k == "kind") {
            if (!v.is_string()) fail("'" + where + ".kind' must be a string");
            try {
              spec.kind = workload::workload_kind_from_name(v.as_string());
            } catch (const std::invalid_argument& e) {
              fail("'" + where + ".kind': " + std::string(e.what()));
            }
            has_kind = true;
          } else if (k == "src" || k == "dst") {
            if (!v.is_string()) {
              fail("'" + where + "." + k + "' must be a string");
            }
            // Fail at load time, not at MonitoringSystem construction:
            // the topology's host names are a fixed set.
            static constexpr const char* kHosts[] = {
                "dtn_int",     "psonar_int",  "ext0",
                "ext1",        "ext2",        "psonar_ext0",
                "psonar_ext1", "psonar_ext2"};
            const std::string name = v.as_string();
            bool known = false;
            for (const char* h : kHosts) known = known || name == h;
            if (!known) {
              fail("'" + where + "." + k + "': unknown host '" + name +
                   "' (dtn_int, psonar_int, ext0..2, psonar_ext0..2)");
            }
            (k == "src" ? spec.src : spec.dst) = name;
          } else if (k == "start_s") {
            spec.start = units::seconds_f(require_number(v, where + "." + k));
          } else if (k == "duration_s") {
            spec.duration =
                units::seconds_f(require_number(v, where + "." + k));
          } else if (k == "pps") {
            spec.pps = require_number(v, where + "." + k);
          } else if (k == "port") {
            spec.port = static_cast<std::uint16_t>(
                require_number(v, where + "." + k));
          } else if (k == "port_count") {
            spec.port_count = static_cast<std::uint32_t>(
                require_number(v, where + "." + k));
          } else if (k == "spoof_count") {
            const double n = require_number(v, where + "." + k);
            if (n < 1) fail("'" + where + ".spoof_count' must be >= 1");
            spec.spoof_count = static_cast<std::uint32_t>(n);
          } else if (k == "elephants") {
            spec.elephants = static_cast<std::size_t>(
                require_number(v, where + "." + k));
          } else if (k == "elephant_mb") {
            spec.elephant_bytes = static_cast<std::uint64_t>(
                require_number(v, where + "." + k) * 1e6);
          } else if (k == "mice_per_second") {
            spec.mice_per_second = require_number(v, where + "." + k);
          } else if (k == "mice_kb") {
            spec.mice_bytes = static_cast<std::uint64_t>(
                require_number(v, where + "." + k) * 1024);
          } else {
            return false;
          }
          return true;
        });
        if (!has_kind) fail("'" + where + "' needs 'kind'");
        config.workloads.push_back(std::move(spec));
      }
    } else if (key == "control") {
      walk(value, "control", [&](const std::string& k,
                                 const util::Json& v) {
        if (k == "flow_idle_timeout_s") {
          config.control.flow_idle_timeout = units::seconds_f(
              require_number(v, "control." + k));
        } else if (k == "digest_poll_ms") {
          config.control.digest_poll_interval = units::seconds_f(
              require_number(v, "control." + k) / 1e3);
        } else {
          return false;
        }
        return true;
      });
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  return config;
}

MonitoringSystemConfig config_from_text(const std::string& text) {
  return config_from_json(util::Json::parse(text));
}

}  // namespace p4s::core
