#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "net/packet.hpp"
#include "util/csv.hpp"

namespace p4s::core {

void Recorder::start(SimTime start, SimTime interval, SimTime until) {
  sim_.every(start, interval, [this, until]() {
    take_sample();
    return sim_.now() + 1 < until;
  });
}

void Recorder::take_sample() {
  TimeSample sample;
  sample.t_s = units::to_seconds(sim_.now());
  for (const auto& [slot, state] : control_plane_.flows()) {
    (void)slot;
    FlowSample fs;
    fs.label = net::to_string(state.flow.tuple.dst_ip);
    fs.throughput_mbps = state.throughput_bps / 1e6;
    fs.rtt_ms = units::to_milliseconds(state.rtt_ns);
    fs.loss_pct = state.loss_pct;
    fs.queue_occupancy_pct = state.queue_occupancy_pct;
    fs.flight_kb = static_cast<double>(state.flight_bytes) / 1e3;
    fs.verdict = telemetry::to_string(state.verdict);
    sample.flows.push_back(std::move(fs));
  }
  std::sort(sample.flows.begin(), sample.flows.end(),
            [](const FlowSample& a, const FlowSample& b) {
              return a.label < b.label;
            });
  const auto& agg = control_plane_.aggregates();
  sample.link_utilization = agg.link_utilization;
  sample.fairness = agg.fairness;
  sample.active_flows = agg.active_flows;
  sample.total_throughput_mbps = agg.total_throughput_bps / 1e6;
  samples_.push_back(std::move(sample));
}

std::vector<std::string> Recorder::labels() const {
  std::set<std::string> set;
  for (const auto& s : samples_) {
    for (const auto& f : s.flows) set.insert(f.label);
  }
  return {set.begin(), set.end()};
}

Recorder::Series Recorder::series(double FlowSample::*metric) const {
  Series out;
  for (const auto& s : samples_) {
    for (const auto& f : s.flows) {
      out[f.label].emplace_back(s.t_s, f.*metric);
    }
  }
  return out;
}

void Recorder::print_table(std::ostream& out, const std::string& title,
                           double FlowSample::*metric,
                           const std::string& unit) const {
  const auto all_labels = labels();
  out << "== " << title << " (" << unit << ") ==\n";
  out << "t_s";
  for (const auto& label : all_labels) out << "\t" << label;
  out << "\n";
  char buf[32];
  for (const auto& s : samples_) {
    std::snprintf(buf, sizeof buf, "%.1f", s.t_s);
    out << buf;
    for (const auto& label : all_labels) {
      double value = 0.0;
      for (const auto& f : s.flows) {
        if (f.label == label) {
          value = f.*metric;
          break;
        }
      }
      std::snprintf(buf, sizeof buf, "%.3f", value);
      out << "\t" << buf;
    }
    out << "\n";
  }
}

void Recorder::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.header({"t_s", "flow", "throughput_mbps", "rtt_ms", "loss_pct",
              "queue_occupancy_pct", "flight_kb", "verdict",
              "link_utilization", "fairness", "active_flows"});
  for (const auto& s : samples_) {
    for (const auto& f : s.flows) {
      csv.cell(s.t_s)
          .cell(f.label)
          .cell(f.throughput_mbps)
          .cell(f.rtt_ms)
          .cell(f.loss_pct)
          .cell(f.queue_occupancy_pct)
          .cell(f.flight_kb)
          .cell(f.verdict)
          .cell(s.link_utilization);
      // Empty cell while the index is undefined (idle link).
      if (s.fairness.has_value()) {
        csv.cell(*s.fairness);
      } else {
        csv.cell("");
      }
      csv.cell(static_cast<std::uint64_t>(s.active_flows));
      csv.end_row();
    }
  }
}

std::vector<TimeSample> thin(const std::vector<TimeSample>& samples,
                             std::size_t max_rows) {
  if (samples.size() <= max_rows || max_rows == 0) return samples;
  std::vector<TimeSample> out;
  const double step =
      static_cast<double>(samples.size()) / static_cast<double>(max_rows);
  for (std::size_t i = 0; i < max_rows; ++i) {
    out.push_back(samples[static_cast<std::size_t>(i * step)]);
  }
  return out;
}

}  // namespace p4s::core
