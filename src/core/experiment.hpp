// Experiment harness: periodic sampling of the control plane's per-flow
// state and aggregates into time series — the repository's stand-in for
// the paper's Grafana dashboards. Series can be printed as aligned
// console tables (what the benches show) or CSV (for external plotting).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "controlplane/control_plane.hpp"
#include "sim/simulation.hpp"

namespace p4s::core {

/// One flow's metrics at a sample instant. Flows are labelled by their
/// destination IP (the paper's Grafana setup "groups the reported
/// measurements by their destination IP address", §5.1).
struct FlowSample {
  std::string label;
  double throughput_mbps = 0.0;
  double rtt_ms = 0.0;
  double loss_pct = 0.0;
  double queue_occupancy_pct = 0.0;
  double flight_kb = 0.0;
  std::string verdict;
};

struct TimeSample {
  double t_s = 0.0;
  std::vector<FlowSample> flows;  // sorted by label
  double link_utilization = 0.0;
  /// Jain's index; nullopt while no flow is active (undefined, not 1.0).
  std::optional<double> fairness;
  std::size_t active_flows = 0;
  double total_throughput_mbps = 0.0;
};

class Recorder {
 public:
  Recorder(sim::Simulation& sim, cp::ControlPlane& control_plane)
      : sim_(sim), control_plane_(control_plane) {}

  /// Sample every `interval` from `start` until `until`.
  void start(SimTime start, SimTime interval, SimTime until);

  const std::vector<TimeSample>& samples() const { return samples_; }

  /// All flow labels that ever appeared, sorted.
  std::vector<std::string> labels() const;

  /// Per-flow series for one metric: label -> (t, value) pairs.
  using Series = std::map<std::string, std::vector<std::pair<double, double>>>;
  Series series(double FlowSample::*metric) const;

  /// Console table: one row per sample, one column per flow for `metric`.
  void print_table(std::ostream& out, const std::string& title,
                   double FlowSample::*metric,
                   const std::string& unit) const;

  /// CSV with every metric of every flow plus the aggregates.
  void write_csv(std::ostream& out) const;

 private:
  void take_sample();

  sim::Simulation& sim_;
  cp::ControlPlane& control_plane_;
  std::vector<TimeSample> samples_;
};

/// Downsample helper: keep roughly `max_rows` evenly spaced rows (for
/// console output of long runs).
std::vector<TimeSample> thin(const std::vector<TimeSample>& samples,
                             std::size_t max_rows);

}  // namespace p4s::core
