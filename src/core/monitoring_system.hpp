// MonitoringSystem — the paper's complete deployment (Figures 3-5) in one
// object, and the library's main entry point:
//
//   * the Figure-8 topology (internal DTN + perfSONAR node, monitored
//     core switch, bottleneck link, WAN switch, three external networks),
//   * N MonitoredSwitch instances (TAP pair + P4 switch + data-plane
//     program + control plane each) sharing the one simulation — the
//     monitoring fabric; the default is the paper's single switch on the
//     core bottleneck,
//   * a perfSONAR node whose Logstash/archiver receive every control
//     plane's reports over one shared transport and whose pSConfig
//     (config-P4, optionally --switch <id>) configures them.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::MonitoringSystem system({});
//   system.psonar().psconfig().execute(
//       "psconfig config-P4 --metric throughput --samples_per_second 1");
//   system.start();
//   auto& flow = system.add_transfer(0, {});     // DTN-int -> DTN-ext1
//   flow.start_at(units::seconds(1));
//   system.run_until(units::seconds(30));
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "controlplane/control_plane.hpp"
#include "controlplane/resilient_sink.hpp"
#include "core/fabric_executor.hpp"
#include "core/monitored_switch.hpp"
#include "net/fault_injector.hpp"
#include "net/report_channel.hpp"
#include "net/topology.hpp"
#include "p4/p4_switch.hpp"
#include "psonar/node.hpp"
#include "quic/flow.hpp"
#include "psonar/store_server.hpp"
#include "sim/simulation.hpp"
#include "store/store.hpp"
#include "tcp/flow.hpp"
#include "telemetry/dataplane_program.hpp"
#include "trace/trace_capture.hpp"
#include "workload/generators.hpp"

namespace p4s::core {

/// Configuration of the control-plane -> Logstash report transport.
/// Default is the legacy perfect wire (direct call into Logstash); with
/// `resilient` set, reports travel a fault-injectable net::ReportChannel
/// through a cp::ResilientReportSink, and `faults` (plus any scripted or
/// random faults added via MonitoringSystem::fault_injector() before
/// start()) are armed against it.
struct ReportTransportConfig {
  bool resilient = false;
  net::ReportChannel::Config channel;
  cp::ResilientReportSink::Config sink;
  std::vector<net::FaultInjector::ScheduledFault> faults;
};

// TraceCaptureConfig lives in core/monitored_switch.hpp (each monitored
// switch owns its capture tee); it is re-exported here unchanged.

/// Configuration of the archiver's storage backend (the config loader's
/// "archive" section). Default is the in-memory archive; with `durable`
/// set, documents persist to a store::Store at `dir` and a maintenance
/// tick on the simulation clock seals/compacts segments in the
/// background.
struct ArchiveConfig {
  bool durable = false;
  /// Store directory (required when durable).
  std::string dir;
  store::StoreConfig store;
  /// Period of the background seal/compact/rollup tick (0 = never; seal
  /// manually via archive_store()).
  SimTime maintenance_interval = units::seconds(1);
};

/// Configuration of the concurrent query-serving path over the durable
/// store (the config loader's "serving" section). Only meaningful with
/// archive.durable: the store's segment block cache is sized from
/// cache_bytes/cache_shards and a ps::StoreServer with reader_threads
/// workers fronts the store (store_server()).
struct ServingConfig {
  bool enabled = false;
  /// Segment block-cache capacity in bytes (0 = unbounded).
  std::size_t cache_bytes = 0;
  /// Lock shards for the block cache.
  std::size_t cache_shards = 8;
  /// Reader threads behind the async StoreServer API.
  std::size_t reader_threads = 4;
};

struct MonitoringSystemConfig {
  net::PaperTopologyConfig topology;
  telemetry::DataPlaneProgram::Config program;
  /// Control-plane config template applied to every monitored switch;
  /// core_buffer_bytes / bottleneck_bps are filled from each switch's
  /// tapped port when left 0.
  cp::ControlPlaneConfig control;
  ReportTransportConfig transport;
  TraceCaptureConfig trace;
  ArchiveConfig archive;
  ServingConfig serving;
  /// The monitored switches of the fabric. Empty = one untagged switch on
  /// the core bottleneck (the paper's deployment, and the legacy
  /// single-switch behavior).
  std::vector<MonitoredSwitchConfig> switches;
  /// Fabric-wide measurement programs (src/mpl), installed on every
  /// site's VM before the per-site MonitoredSwitchConfig.programs. The
  /// config loader fills this from the top-level "programs" section.
  std::vector<mpl::Program> programs;
  /// Parallel fabric execution (the config loader's switches.parallel
  /// knob): number of worker threads advancing per-switch pipeline
  /// shards. 1 (or 0) = the serial in-timeline path, bit-for-bit the
  /// legacy behavior; >= 2 = sharded execution via a FabricExecutor.
  /// Seeded outputs are byte-identical at every value.
  std::size_t parallel = 1;
  /// Test-only: randomized worker stalls (see ShardPool::Config) for the
  /// parallel determinism battery. 0 = off.
  std::uint64_t scheduling_jitter_seed = 0;
  /// Declarative traffic workloads (the config loader's "workloads"
  /// section): adversarial generators (SYN flood, port scan) and the
  /// benign elephant/mice mix, resolved against topology host names and
  /// started with the system.
  std::vector<workload::WorkloadSpec> workloads;
  SimTime tap_latency = units::microseconds(1);
  std::uint64_t seed = 1;
};

class MonitoringSystem {
 public:
  explicit MonitoringSystem(MonitoringSystemConfig config);
  MonitoringSystem() : MonitoringSystem(MonitoringSystemConfig{}) {}
  ~MonitoringSystem();

  MonitoringSystem(const MonitoringSystem&) = delete;
  MonitoringSystem& operator=(const MonitoringSystem&) = delete;

  /// Start the control plane's extraction timers (call after any initial
  /// pSConfig commands so the first tick uses the configured rates).
  void start();

  /// Create a bulk transfer from the internal DTN to external DTN
  /// `ext_index` (0..2). The flow is owned by the system; schedule it
  /// with start_at()/stop_at().
  tcp::TcpFlow& add_transfer(int ext_index,
                             tcp::TcpFlow::Config flow_config = {});

  /// Create a transfer between arbitrary hosts of the topology.
  tcp::TcpFlow& add_flow(net::Host& src, net::Host& dst,
                         tcp::TcpFlow::Config flow_config = {});

  /// Create an encrypted QUIC transfer from the internal DTN to external
  /// DTN `ext_index` (0..2). Owned by the system; schedule with
  /// start_at()/stop_at().
  quic::QuicFlow& add_quic_transfer(int ext_index,
                                    quic::QuicFlow::Config flow_config = {});

  /// Create a QUIC transfer between arbitrary hosts of the topology.
  quic::QuicFlow& add_quic_flow(net::Host& src, net::Host& dst,
                                quic::QuicFlow::Config flow_config = {});

  /// Resolve a topology host by its config name: "dtn_int",
  /// "psonar_int", "ext0".."ext2", "psonar_ext0".."psonar_ext2". Throws
  /// std::invalid_argument on unknown names.
  net::Host& host_by_name(const std::string& name);

  /// Advance the run to `t`. In parallel mode this ends with an
  /// inclusive fabric barrier at `t`, after which every shard's clock
  /// sits at `t` and shard-owned state (P4 counters, captures) is
  /// readable from the calling thread — matching what a serial
  /// run_until(t) leaves behind.
  void run_until(SimTime t);

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return network_; }
  net::PaperTopology& topology() { return topology_; }
  ps::PerfSonarNode& psonar() { return *psonar_; }
  const MonitoringSystemConfig& config() const { return config_; }

  // ---- The monitoring fabric ------------------------------------------
  std::size_t switch_count() const { return switches_.size(); }
  MonitoredSwitch& monitored_switch(std::size_t index) {
    return *switches_.at(index);
  }
  const std::vector<std::unique_ptr<MonitoredSwitch>>& monitored_switches()
      const {
    return switches_;
  }

  /// Whether the sharded parallel runtime is active (config.parallel
  /// >= 2).
  bool parallel_fabric() const { return fabric_ != nullptr; }
  /// The parallel runtime (only with parallel_fabric()).
  FabricExecutor& fabric_executor() { return *fabric_; }

  /// Cross-switch counters, snapshotted at a merge barrier. In parallel
  /// mode the per-site P4/capture counters are worker-owned and may be
  /// mid-flush at any instant; this is the ONLY race-free way to read
  /// them while the fabric runs — it barriers every shard to the
  /// current main time first, so the totals are exactly the serial
  /// run's (no torn or partial values). In serial mode it is a plain
  /// read of the same counters.
  struct FabricSiteStats {
    std::string id;              // config id ("" for the legacy switch)
    std::uint64_t mirrored = 0;  // copies the TAP pair took
    std::uint64_t processed = 0;       // frames the P4 parser accepted
    std::uint64_t parse_errors = 0;    // frames the parser rejected
    std::uint64_t captured = 0;        // pcap records (0 when not capturing)
    std::uint64_t reports_emitted = 0;  // control-plane documents
    std::uint64_t pending_digests = 0;  // queued, not yet polled
  };
  struct FabricStats {
    SimTime at = 0;  // barrier time of the snapshot
    std::vector<FabricSiteStats> sites;
    std::uint64_t mirrored = 0;  // sums over sites
    std::uint64_t processed = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t reports_emitted = 0;
    // Parallel-runtime telemetry (0 in serial mode).
    std::size_t workers = 0;
    std::uint64_t barrier_waits = 0;
    std::uint64_t blocked_pushes = 0;
  };
  FabricStats fabric_stats();

  // Single-switch accessors (the N=1 legacy API): delegate to switch 0,
  // which always exists.
  p4::P4Switch& p4_switch() { return switches_[0]->p4_switch(); }
  net::OpticalTapPair& taps() { return switches_[0]->taps(); }
  telemetry::DataPlaneProgram& program() { return switches_[0]->program(); }
  cp::ControlPlane& control_plane() {
    return switches_[0]->control_plane();
  }

  /// Whether the resilient report transport is active.
  bool resilient_transport() const { return channel_ != nullptr; }
  /// The simulated report wire (only with transport.resilient).
  net::ReportChannel& report_channel() { return *channel_; }
  /// Fault scheduler for the report wire (only with transport.resilient).
  /// Add scripted/random faults before start(); start() arms it.
  net::FaultInjector& fault_injector() { return *fault_injector_; }
  /// The hardened sink (only with transport.resilient).
  cp::ResilientReportSink& report_sink() { return *resilient_sink_; }

  /// Whether the archiver persists to the durable store.
  bool durable_archive() const { return store_ != nullptr; }
  /// The durable store behind the archiver (only with archive.durable).
  /// Seal/flush through it at end of run to make the tail durable.
  store::Store& archive_store() { return *store_; }

  /// Whether the concurrent serving path is active (serving.enabled on a
  /// durable archive).
  bool serving() const { return store_server_ != nullptr; }
  /// The thread-safe query server over the durable store (only with
  /// serving.enabled).
  ps::StoreServer& store_server() { return *store_server_; }

  /// Whether pcap capture of the mirror streams is active (switch 0).
  bool capturing() const { return switches_[0]->capturing(); }
  /// The capture tee (only with trace.capture; switch 0's tee).
  trace::TraceCapture& trace_capture() {
    return switches_[0]->trace_capture();
  }

  const std::vector<std::unique_ptr<tcp::TcpFlow>>& flows() const {
    return flows_;
  }
  const std::vector<std::unique_ptr<quic::QuicFlow>>& quic_flows() const {
    return quic_flows_;
  }
  /// Generators built from config.workloads, in config order; start()
  /// schedules them.
  const std::vector<std::unique_ptr<workload::TrafficGenerator>>& workloads()
      const {
    return workloads_;
  }

 private:
  MonitoringSystemConfig config_;
  sim::Simulation sim_;
  net::Network network_;
  net::PaperTopology topology_;
  // Parallel mode only: one pipeline clock per monitored switch, owned
  // here so they outlive both the switches and the executor's workers.
  std::vector<std::unique_ptr<sim::Simulation>> pipeline_sims_;
  std::vector<std::unique_ptr<MonitoredSwitch>> switches_;
  std::unique_ptr<store::Store> store_;  // before psonar_: archiver backend
  std::unique_ptr<ps::StoreServer> store_server_;
  std::unique_ptr<ps::PerfSonarNode> psonar_;
  std::unique_ptr<net::ReportChannel> channel_;
  std::unique_ptr<net::FaultInjector> fault_injector_;
  std::unique_ptr<cp::ResilientReportSink> resilient_sink_;
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows_;
  std::vector<std::unique_ptr<quic::QuicFlow>> quic_flows_;
  std::vector<std::unique_ptr<workload::TrafficGenerator>> workloads_;
  // Declared last: destroyed first, stopping the workers while every
  // shard's simulation and sinks are still alive.
  std::unique_ptr<FabricExecutor> fabric_;
};

}  // namespace p4s::core
