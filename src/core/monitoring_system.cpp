#include "core/monitoring_system.hpp"

#include <stdexcept>

#include "psonar/store_backend.hpp"

namespace p4s::core {

MonitoringSystem::MonitoringSystem(MonitoringSystemConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(sim_),
      topology_(net::make_paper_topology(network_, config_.topology)) {
  // Build the monitoring fabric: one MonitoredSwitch per configured
  // entry, defaulting to the paper's single untagged switch on the core
  // bottleneck. All instances share the one simulation and topology.
  std::vector<MonitoredSwitchConfig> switch_configs = config_.switches;
  if (switch_configs.empty()) switch_configs.push_back({});
  for (std::size_t i = 0; i < switch_configs.size(); ++i) {
    switches_.push_back(std::make_unique<MonitoredSwitch>(
        sim_, topology_, switch_configs[i], config_.program, config_.control,
        config_.trace, config_.tap_latency, i));
  }

  psonar_ =
      std::make_unique<ps::PerfSonarNode>(sim_, *topology_.psonar_internal);
  if (config_.archive.durable) {
    // Durable archive: swap the archiver onto the segmented store before
    // any report can be indexed.
    if (config_.archive.dir.empty()) {
      throw std::invalid_argument(
          "archive.durable requires a store directory (archive.dir)");
    }
    store::StoreConfig store_config = config_.archive.store;
    if (config_.serving.enabled) {
      // The serving section sizes the store's segment block cache.
      store_config.cache_bytes = config_.serving.cache_bytes;
      store_config.cache_shards = config_.serving.cache_shards;
    }
    store_ = std::make_unique<store::Store>(config_.archive.dir,
                                            std::move(store_config));
    psonar_->archiver().set_backend(
        std::make_unique<ps::StoreBackend>(*store_));
    if (config_.serving.enabled) {
      ps::StoreServerConfig server_config;
      server_config.reader_threads = config_.serving.reader_threads;
      store_server_ =
          std::make_unique<ps::StoreServer>(*store_, server_config);
    }
  } else if (config_.serving.enabled) {
    throw std::invalid_argument(
        "serving.enabled requires a durable archive (archive.durable)");
  }
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    psonar_->psconfig().add_control_plane(switches_[i]->control_plane(),
                                          switches_[i]->id());
  }

  // One shared report transport: every control plane feeds the same sink
  // (reports are distinguished by their "switch_id" tag).
  cp::ReportSink* shared_sink = &psonar_->report_sink();
  if (config_.transport.resilient) {
    // Fault-injectable wire: control planes -> ResilientReportSink ->
    // ReportChannel -> Logstash TCP input; acks flow back per "@xmit_seq".
    channel_ =
        std::make_unique<net::ReportChannel>(sim_, config_.transport.channel);
    auto& logstash = psonar_->logstash();
    channel_->set_receiver(
        [&logstash](std::string_view chunk) { logstash.tcp_input(chunk); });
    channel_->on_disconnect([&logstash]() { logstash.tcp_reset(); });
    fault_injector_ = std::make_unique<net::FaultInjector>(sim_, *channel_);
    for (const auto& fault : config_.transport.faults) {
      fault_injector_->add(fault);
    }
    resilient_sink_ = std::make_unique<cp::ResilientReportSink>(
        sim_, *channel_, config_.transport.sink);
    logstash.set_transport_ack(
        [this](std::uint64_t seq) { resilient_sink_->on_ack(seq); });
    shared_sink = resilient_sink_.get();
  }
  for (auto& monitored : switches_) {
    monitored->control_plane().set_sink(shared_sink);
  }
}

void MonitoringSystem::start() {
  if (fault_injector_) fault_injector_->arm();
  for (auto& monitored : switches_) monitored->control_plane().start();
  if (store_ && config_.archive.maintenance_interval > 0) {
    // Background-style store maintenance on the simulation clock: commit
    // the WAL batch, seal big memtables, compact fragmented indices.
    const SimTime period = config_.archive.maintenance_interval;
    sim_.every(period, period, [this] {
      store_->maintain();
      return true;
    });
  }
}

tcp::TcpFlow& MonitoringSystem::add_transfer(
    int ext_index, tcp::TcpFlow::Config flow_config) {
  if (ext_index < 0 || ext_index > 2) {
    throw std::out_of_range("add_transfer: ext_index must be 0..2");
  }
  return add_flow(*topology_.dtn_internal,
                  *topology_.dtn_ext[static_cast<std::size_t>(ext_index)],
                  std::move(flow_config));
}

tcp::TcpFlow& MonitoringSystem::add_flow(net::Host& src, net::Host& dst,
                                         tcp::TcpFlow::Config flow_config) {
  flows_.push_back(
      std::make_unique<tcp::TcpFlow>(sim_, src, dst, std::move(flow_config)));
  return *flows_.back();
}

}  // namespace p4s::core
