#include "core/monitoring_system.hpp"

#include <stdexcept>

namespace p4s::core {

MonitoringSystem::MonitoringSystem(MonitoringSystemConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(sim_),
      topology_(net::make_paper_topology(network_, config_.topology)) {
  program_ = std::make_unique<telemetry::DataPlaneProgram>(config_.program);
  p4_switch_ = std::make_unique<p4::P4Switch>(sim_, "tofino-monitor");
  p4_switch_->load_program(*program_);
  // With capture enabled the TAPs feed a pcap-writing tee that forwards
  // every mirrored frame to the P4 switch unchanged.
  net::MirrorSink* mirror_sink = p4_switch_.get();
  if (config_.trace.capture) {
    trace_capture_ = std::make_unique<trace::TraceCapture>(
        sim_, *p4_switch_, config_.trace.path_base,
        trace::TraceCapture::Config{config_.trace.snaplen});
    mirror_sink = trace_capture_.get();
  }
  taps_ = std::make_unique<net::OpticalTapPair>(sim_, *mirror_sink,
                                                config_.tap_latency);
  taps_->attach(*topology_.core_switch, *topology_.bottleneck_port);

  // Fill control-plane knowledge of the monitored switch from the
  // topology unless the caller overrode it.
  cp::ControlPlaneConfig cp_config = config_.control;
  if (cp_config.core_buffer_bytes == 0) {
    cp_config.core_buffer_bytes =
        topology_.bottleneck_port->queue().capacity_bytes();
  }
  if (cp_config.bottleneck_bps == 0) {
    cp_config.bottleneck_bps = config_.topology.bottleneck_bps;
  }
  control_plane_ =
      std::make_unique<cp::ControlPlane>(sim_, *program_, cp_config);

  psonar_ =
      std::make_unique<ps::PerfSonarNode>(sim_, *topology_.psonar_internal);
  psonar_->psconfig().attach(*control_plane_);

  if (config_.transport.resilient) {
    // Fault-injectable wire: control plane -> ResilientReportSink ->
    // ReportChannel -> Logstash TCP input; acks flow back per "@xmit_seq".
    channel_ =
        std::make_unique<net::ReportChannel>(sim_, config_.transport.channel);
    auto& logstash = psonar_->logstash();
    channel_->set_receiver(
        [&logstash](std::string_view chunk) { logstash.tcp_input(chunk); });
    channel_->on_disconnect([&logstash]() { logstash.tcp_reset(); });
    fault_injector_ = std::make_unique<net::FaultInjector>(sim_, *channel_);
    for (const auto& fault : config_.transport.faults) {
      fault_injector_->add(fault);
    }
    resilient_sink_ = std::make_unique<cp::ResilientReportSink>(
        sim_, *channel_, config_.transport.sink);
    logstash.set_transport_ack(
        [this](std::uint64_t seq) { resilient_sink_->on_ack(seq); });
    control_plane_->set_sink(resilient_sink_.get());
  } else {
    control_plane_->set_sink(&psonar_->report_sink());
  }
}

void MonitoringSystem::start() {
  if (fault_injector_) fault_injector_->arm();
  control_plane_->start();
}

tcp::TcpFlow& MonitoringSystem::add_transfer(
    int ext_index, tcp::TcpFlow::Config flow_config) {
  if (ext_index < 0 || ext_index > 2) {
    throw std::out_of_range("add_transfer: ext_index must be 0..2");
  }
  return add_flow(*topology_.dtn_internal,
                  *topology_.dtn_ext[static_cast<std::size_t>(ext_index)],
                  std::move(flow_config));
}

tcp::TcpFlow& MonitoringSystem::add_flow(net::Host& src, net::Host& dst,
                                         tcp::TcpFlow::Config flow_config) {
  flows_.push_back(
      std::make_unique<tcp::TcpFlow>(sim_, src, dst, std::move(flow_config)));
  return *flows_.back();
}

}  // namespace p4s::core
