#include "core/monitoring_system.hpp"

#include <stdexcept>

#include "psonar/store_backend.hpp"

namespace p4s::core {

MonitoringSystem::MonitoringSystem(MonitoringSystemConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(sim_),
      topology_(net::make_paper_topology(network_, config_.topology)) {
  // Build the monitoring fabric: one MonitoredSwitch per configured
  // entry, defaulting to the paper's single untagged switch on the core
  // bottleneck. All instances share the one simulation and topology.
  std::vector<MonitoredSwitchConfig> switch_configs = config_.switches;
  if (switch_configs.empty()) switch_configs.push_back({});

  // parallel >= 2 selects the sharded runtime: each switch's mirror
  // pipeline gets its own simulation clock and executes on a
  // FabricExecutor worker; control planes, transport and archiver stay
  // on the main timeline, which is what keeps seeded outputs
  // byte-identical to the serial path at any worker count.
  if (config_.parallel > 1) {
    FabricExecutor::Config fabric_config;
    fabric_config.workers = config_.parallel;
    fabric_config.scheduling_jitter_seed = config_.scheduling_jitter_seed;
    fabric_ = std::make_unique<FabricExecutor>(sim_, fabric_config);
  }

  for (std::size_t i = 0; i < switch_configs.size(); ++i) {
    sim::Simulation* pipeline_sim = nullptr;
    if (fabric_) {
      // Per-shard RNG stream: decorrelated from the root seed (the
      // pipeline itself draws no randomness, but the stream is the
      // shard's to use).
      pipeline_sims_.push_back(std::make_unique<sim::Simulation>(
          config_.seed ^ (0x9E3779B97F4A7C15ull * (i + 1))));
      pipeline_sim = pipeline_sims_.back().get();
    }
    switches_.push_back(std::make_unique<MonitoredSwitch>(
        sim_, topology_, switch_configs[i], config_.program, config_.control,
        config_.trace, config_.programs, config_.tap_latency, i,
        pipeline_sim));
    if (fabric_) {
      const std::size_t shard =
          fabric_->add_switch(*pipeline_sim, switches_[i]->entry_sink());
      switches_[i]->taps().set_boundary(&fabric_->boundary(shard));
      // Driver reads observe exactly the deliveries a serial run would
      // have executed before a tick at the current time (ticks beat
      // same-timestamp deliveries in the serial queue's FIFO order).
      switches_[i]->control_plane().set_driver_sync(
          [this, shard]() { fabric_->sync(shard); });
    }
  }

  psonar_ =
      std::make_unique<ps::PerfSonarNode>(sim_, *topology_.psonar_internal);
  if (config_.archive.durable) {
    // Durable archive: swap the archiver onto the segmented store before
    // any report can be indexed.
    if (config_.archive.dir.empty()) {
      throw std::invalid_argument(
          "archive.durable requires a store directory (archive.dir)");
    }
    store::StoreConfig store_config = config_.archive.store;
    if (config_.serving.enabled) {
      // The serving section sizes the store's segment block cache.
      store_config.cache_bytes = config_.serving.cache_bytes;
      store_config.cache_shards = config_.serving.cache_shards;
    }
    store_ = std::make_unique<store::Store>(config_.archive.dir,
                                            std::move(store_config));
    psonar_->archiver().set_backend(
        std::make_unique<ps::StoreBackend>(*store_));
    if (config_.serving.enabled) {
      ps::StoreServerConfig server_config;
      server_config.reader_threads = config_.serving.reader_threads;
      store_server_ =
          std::make_unique<ps::StoreServer>(*store_, server_config);
    }
  } else if (config_.serving.enabled) {
    throw std::invalid_argument(
        "serving.enabled requires a durable archive (archive.durable)");
  }
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    psonar_->psconfig().add_control_plane(switches_[i]->control_plane(),
                                          switches_[i]->id(),
                                          &switches_[i]->program_vm());
  }

  // One shared report transport: every control plane feeds the same sink
  // (reports are distinguished by their "switch_id" tag).
  cp::ReportSink* shared_sink = &psonar_->report_sink();
  if (config_.transport.resilient) {
    // Fault-injectable wire: control planes -> ResilientReportSink ->
    // ReportChannel -> Logstash TCP input; acks flow back per "@xmit_seq".
    channel_ =
        std::make_unique<net::ReportChannel>(sim_, config_.transport.channel);
    auto& logstash = psonar_->logstash();
    channel_->set_receiver(
        [&logstash](std::string_view chunk) { logstash.tcp_input(chunk); });
    channel_->on_disconnect([&logstash]() { logstash.tcp_reset(); });
    fault_injector_ = std::make_unique<net::FaultInjector>(sim_, *channel_);
    for (const auto& fault : config_.transport.faults) {
      fault_injector_->add(fault);
    }
    resilient_sink_ = std::make_unique<cp::ResilientReportSink>(
        sim_, *channel_, config_.transport.sink);
    logstash.set_transport_ack(
        [this](std::uint64_t seq) { resilient_sink_->on_ack(seq); });
    shared_sink = resilient_sink_.get();
  }
  for (auto& monitored : switches_) {
    monitored->control_plane().set_sink(shared_sink);
  }

  // Declarative workloads: built here (hosts exist), scheduled in
  // start(). Generators are deterministic — their schedules derive from
  // counters, never the simulation RNG — so enabling one perturbs no
  // other seeded output.
  for (const workload::WorkloadSpec& spec : config_.workloads) {
    workloads_.push_back(make_generator(
        sim_, host_by_name(spec.src), host_by_name(spec.dst), spec));
  }
}

MonitoringSystem::~MonitoringSystem() {
  // Stop the workers before any shard-owned state (pipeline sims,
  // captures, programs) goes away.
  if (fabric_) fabric_->stop();
}

void MonitoringSystem::run_until(SimTime t) {
  sim_.run_until(t);
  // Inclusive merge barrier: every shard executes its deliveries with
  // timestamp <= t and parks its clock at t — the state a serial
  // run_until(t) leaves. Deliveries still in flight (mirrored within
  // tap_latency of t) stay pending in both modes.
  if (fabric_) fabric_->barrier_all(t);
}

MonitoringSystem::FabricStats MonitoringSystem::fabric_stats() {
  FabricStats stats;
  stats.at = sim_.now();
  if (fabric_) {
    // Merge barrier first: the watermark acquire inside makes every
    // worker-side counter write visible to this thread, so the reads
    // below are race-free and the totals are the serial run's.
    fabric_->barrier_all(sim_.now());
    stats.workers = fabric_->worker_count();
    stats.barrier_waits = fabric_->barrier_waits();
    stats.blocked_pushes = fabric_->blocked_pushes();
  }
  for (auto& monitored : switches_) {
    FabricSiteStats site;
    site.id = monitored->id();
    site.mirrored = monitored->taps().mirrored_pkts();
    site.processed = monitored->p4_switch().processed_pkts();
    site.parse_errors = monitored->p4_switch().parse_errors();
    site.captured =
        monitored->capturing() ? monitored->trace_capture().captured_total()
                               : 0;
    site.reports_emitted = monitored->control_plane().reports_emitted();
    site.pending_digests = monitored->program().pending_digests();
    stats.mirrored += site.mirrored;
    stats.processed += site.processed;
    stats.parse_errors += site.parse_errors;
    stats.reports_emitted += site.reports_emitted;
    stats.sites.push_back(std::move(site));
  }
  return stats;
}

void MonitoringSystem::start() {
  if (fabric_) fabric_->start();
  if (fault_injector_) fault_injector_->arm();
  for (auto& monitored : switches_) monitored->control_plane().start();
  for (auto& generator : workloads_) generator->start();
  if (store_ && config_.archive.maintenance_interval > 0) {
    // Background-style store maintenance on the simulation clock: commit
    // the WAL batch, seal big memtables, compact fragmented indices.
    const SimTime period = config_.archive.maintenance_interval;
    sim_.every(period, period, [this] {
      store_->maintain();
      return true;
    });
  }
}

tcp::TcpFlow& MonitoringSystem::add_transfer(
    int ext_index, tcp::TcpFlow::Config flow_config) {
  if (ext_index < 0 || ext_index > 2) {
    throw std::out_of_range("add_transfer: ext_index must be 0..2");
  }
  return add_flow(*topology_.dtn_internal,
                  *topology_.dtn_ext[static_cast<std::size_t>(ext_index)],
                  std::move(flow_config));
}

tcp::TcpFlow& MonitoringSystem::add_flow(net::Host& src, net::Host& dst,
                                         tcp::TcpFlow::Config flow_config) {
  flows_.push_back(
      std::make_unique<tcp::TcpFlow>(sim_, src, dst, std::move(flow_config)));
  return *flows_.back();
}

quic::QuicFlow& MonitoringSystem::add_quic_transfer(
    int ext_index, quic::QuicFlow::Config flow_config) {
  if (ext_index < 0 || ext_index > 2) {
    throw std::out_of_range("add_quic_transfer: ext_index must be 0..2");
  }
  return add_quic_flow(
      *topology_.dtn_internal,
      *topology_.dtn_ext[static_cast<std::size_t>(ext_index)],
      std::move(flow_config));
}

quic::QuicFlow& MonitoringSystem::add_quic_flow(
    net::Host& src, net::Host& dst, quic::QuicFlow::Config flow_config) {
  quic_flows_.push_back(std::make_unique<quic::QuicFlow>(
      sim_, src, dst, std::move(flow_config)));
  return *quic_flows_.back();
}

net::Host& MonitoringSystem::host_by_name(const std::string& name) {
  if (name == "dtn_int") return *topology_.dtn_internal;
  if (name == "psonar_int") return *topology_.psonar_internal;
  for (int i = 0; i < 3; ++i) {
    const std::string suffix = std::to_string(i);
    if (name == "ext" + suffix) {
      return *topology_.dtn_ext[static_cast<std::size_t>(i)];
    }
    if (name == "psonar_ext" + suffix) {
      return *topology_.psonar_ext[static_cast<std::size_t>(i)];
    }
  }
  throw std::invalid_argument("unknown topology host: " + name);
}

}  // namespace p4s::core
