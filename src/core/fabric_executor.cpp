#include "core/fabric_executor.hpp"

#include <stdexcept>
#include <thread>

namespace p4s::core {

// One monitored switch's pipeline shard: the consumer end of the TAP
// boundary and the ShardPool execution hook. push() runs on the main
// thread, advance_to() on the shard's worker; the SPSC inbox and the
// pool's grant/watermark protocol are the only points of contact.
class FabricExecutor::SwitchShard : public sim::ShardPool::Shard,
                                    public net::MirrorBoundary {
 public:
  SwitchShard(FabricExecutor& fabric, sim::Simulation& pipeline_sim,
              net::MirrorSink& entry)
      : fabric_(fabric), pipeline_sim_(pipeline_sim), entry_(entry) {}

  void bind(std::size_t id) { id_ = id; }

  // ---- main thread ----------------------------------------------------
  void push(const net::MirrorFrame& frame) override {
    if (inbox_.try_push(frame)) return;
    // Inbox full. Publish the maximal safe grant — every frame mirrored
    // after this one is delivered at or after frame.at, so frame.at - 1
    // can never be invalidated — and wait for the worker to drain.
    // Only frames due at exactly frame.at stay ungrantable, and a site
    // cannot mirror a ring's worth of copies in a single nanosecond, so
    // space is guaranteed to appear.
    ++blocked_pushes_;
    fabric_.pool_.publish_grant(id_, frame.at == 0 ? 0 : frame.at - 1);
    while (!inbox_.try_push(frame)) {
      fabric_.pool_.kick(id_);
      fabric_.pool_.throw_if_failed();
      std::this_thread::yield();
    }
  }

  std::uint64_t blocked_pushes() const { return blocked_pushes_; }

  // ---- worker thread --------------------------------------------------
  void advance_to(SimTime grant) override {
    while (net::MirrorFrame* frame = inbox_.front()) {
      if (frame->at > grant) break;
      // Local events first at equal timestamps: run_until executes
      // everything with time <= frame->at and parks the shard clock
      // there, reproducing the serial queue's tie rule (a driver tick
      // was scheduled a full extraction interval before the delivery's
      // mirror event, so it drew the smaller FIFO seq).
      pipeline_sim_.run_until(frame->at);
      entry_.on_mirrored_bytes(
          std::span<const std::uint8_t>(frame->bytes.data(), frame->len),
          frame->point, frame->wire_len);
      ++delivered_;
      inbox_.pop();
    }
    if (grant > pipeline_sim_.now()) pipeline_sim_.run_until(grant);
  }

  bool has_boundary_backlog() const override {
    // Every actionable frame is covered by a published grant before it
    // is pushed (pump grants main_now - 1; a full-inbox push grants
    // frame.at - 1), so the watermark test alone schedules all work.
    // Frames beyond the newest grant must wait for the next one —
    // reporting them here would spin the worker against a fixed grant.
    return false;
  }

  std::uint64_t delivered() const { return delivered_; }

 private:
  FabricExecutor& fabric_;
  sim::Simulation& pipeline_sim_;
  net::MirrorSink& entry_;
  sim::BoundaryQueue<net::MirrorFrame> inbox_;
  std::size_t id_ = 0;
  std::uint64_t blocked_pushes_ = 0;  // main-thread owned
  std::uint64_t delivered_ = 0;       // worker owned; read under barrier
};

FabricExecutor::FabricExecutor(sim::Simulation& main_sim, Config config)
    : main_sim_(main_sim),
      config_(config),
      pool_(sim::ShardPool::Config{
          config.workers == 0 ? 1 : config.workers,
          config.scheduling_jitter_seed}) {
  if (config_.grant_period == 0) {
    throw std::invalid_argument("FabricExecutor: grant_period must be > 0");
  }
}

FabricExecutor::~FabricExecutor() { stop(); }

std::size_t FabricExecutor::add_switch(sim::Simulation& pipeline_sim,
                                       net::MirrorSink& entry) {
  if (started_) {
    throw std::logic_error("FabricExecutor: add_switch after start()");
  }
  shards_.push_back(
      std::make_unique<SwitchShard>(*this, pipeline_sim, entry));
  const std::size_t id = pool_.add_shard(*shards_.back());
  shards_.back()->bind(id);
  return id;
}

net::MirrorBoundary& FabricExecutor::boundary(std::size_t shard) {
  return *shards_.at(shard);
}

void FabricExecutor::start() {
  if (started_) return;
  started_ = true;
  pool_.start();
  // Grant pump: keep the workers trailing the main clock so pipelines
  // overlap with topology/TCP execution between driver reads.
  main_sim_.every(config_.grant_period, config_.grant_period, [this]() {
    const SimTime now = main_sim_.now();
    pool_.publish_grant_all(now == 0 ? 0 : now - 1);
    return true;
  });
}

void FabricExecutor::stop() { pool_.stop(); }

void FabricExecutor::sync(std::size_t shard) {
  const SimTime now = main_sim_.now();
  pool_.barrier(shard, now == 0 ? 0 : now - 1);
}

void FabricExecutor::barrier_all(SimTime t) { pool_.barrier_all(t); }

std::uint64_t FabricExecutor::frames_delivered(std::size_t shard) const {
  return shards_.at(shard)->delivered();
}

std::uint64_t FabricExecutor::blocked_pushes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->blocked_pushes();
  return total;
}

}  // namespace p4s::core
