// JSON configuration loading for MonitoringSystem — lets experiments be
// described declaratively (the run_experiment tool consumes these):
//
//   {
//     "seed": 7,
//     "topology": {"bottleneck_mbps": 250, "rtt_ms": [50, 75, 100],
//                  "core_buffer_bdp_of_rtt_ms": 50},
//     "program":  {"promotion_kb": 100, "burst_threshold_us": 500,
//                  "int_sample_every": 0},
//     "control":  {"flow_idle_timeout_s": 2}
//   }
//
// Every field is optional; absent fields keep their defaults. Unknown
// keys are an error (config typos must not pass silently).
#pragma once

#include <string>

#include "core/monitoring_system.hpp"
#include "util/json.hpp"

namespace p4s::core {

/// Parse a config document into a MonitoringSystemConfig. Throws
/// std::invalid_argument on unknown keys or ill-typed values.
MonitoringSystemConfig config_from_json(const util::Json& doc);

/// Convenience: parse text, then config_from_json. Throws
/// util::JsonError / std::invalid_argument.
MonitoringSystemConfig config_from_text(const std::string& text);

}  // namespace p4s::core
