// MonitoredSwitch — one monitored site of the fabric: a passive TAP pair
// on a chosen switch/port of the shared topology, the P4 switch running
// the telemetry data-plane program, its control plane, and (optionally)
// a pcap capture tee. MonitoringSystem owns N of these over one
// simulation and one report transport; the paper's single-switch
// deployment (Figures 3-5) is the N=1 case.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "controlplane/control_plane.hpp"
#include "mpl/vm.hpp"
#include "net/tap.hpp"
#include "net/topology.hpp"
#include "p4/p4_switch.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"
#include "trace/trace_capture.hpp"

namespace p4s::core {

/// Pcap capture of the TAP mirror streams (src/trace). When enabled, a
/// trace::TraceCapture tee is inserted between the optical TAP pair and
/// the P4 switch, writing `<path_base>.ingress.pcap` and
/// `<path_base>.egress.pcap` as the run executes. Additional monitored
/// switches capture to `<path_base>.<id>.{ingress,egress}.pcap`.
struct TraceCaptureConfig {
  bool capture = false;
  std::string path_base = "p4s-trace";
  std::uint32_t snaplen = trace::kDefaultSnaplen;
};

/// Where a monitored switch's TAP pair attaches in the Figure-8 topology.
enum class TapPoint {
  kCoreBottleneck = 0,  // core switch, bottleneck port (the paper's site)
  kWanExt0 = 1,         // WAN switch, access port toward external DTN 1
  kWanExt1 = 2,
  kWanExt2 = 3,
};

const char* to_string(TapPoint point);
/// Inverse of to_string ("core", "wan_ext0".."wan_ext2"); throws
/// std::invalid_argument on unknown names.
TapPoint tap_point_from_name(const std::string& name);

struct MonitoredSwitchConfig {
  /// Site identity stamped into the switch's Report_v1 stream as
  /// "switch_id". Empty = untagged (the legacy single-switch format).
  std::string id;
  TapPoint tap = TapPoint::kCoreBottleneck;
  /// Measurement programs (src/mpl) installed on this site's VM at
  /// construction, after any fabric-wide ones — a same-named site
  /// program replaces the fabric-wide install.
  std::vector<mpl::Program> programs;
};

class MonitoredSwitch {
 public:
  /// `control_config`'s core_buffer_bytes / bottleneck_bps are filled
  /// from the tapped port when left 0; its switch_id is taken from
  /// `config.id`. `index` is the switch's position in the fabric (used
  /// for default capture paths and --switch indexing).
  ///
  /// `pipeline_sim` selects the execution mode. nullptr (serial): the
  /// whole site lives on `sim`, mirror deliveries included. Non-null
  /// (parallel fabric): the mirror pipeline — capture tee + P4 switch —
  /// is built on `pipeline_sim`, whose clock a FabricExecutor shard
  /// advances to each frame's delivery time on a worker thread; the
  /// TAPs and the control plane stay on `sim`. The caller wires
  /// entry_sink() and taps().set_boundary() to the executor.
  /// `fabric_programs` are installed on every site before the site's own
  /// config.programs.
  MonitoredSwitch(sim::Simulation& sim, net::PaperTopology& topology,
                  const MonitoredSwitchConfig& config,
                  const telemetry::DataPlaneProgram::Config& program_config,
                  cp::ControlPlaneConfig control_config,
                  const TraceCaptureConfig& trace_config,
                  const std::vector<mpl::Program>& fabric_programs,
                  SimTime tap_latency, std::size_t index,
                  sim::Simulation* pipeline_sim = nullptr);

  MonitoredSwitch(const MonitoredSwitch&) = delete;
  MonitoredSwitch& operator=(const MonitoredSwitch&) = delete;

  const std::string& id() const { return config_.id; }
  TapPoint tap_point() const { return config_.tap; }

  telemetry::DataPlaneProgram& program() { return *program_; }
  /// The site's measurement-program VM (always present; empty unless
  /// programs were configured or installed via config-P4).
  mpl::ProgramVm& program_vm() { return *vm_; }
  p4::P4Switch& p4_switch() { return *p4_switch_; }
  net::OpticalTapPair& taps() { return *taps_; }
  cp::ControlPlane& control_plane() { return *control_plane_; }

  bool capturing() const { return trace_capture_ != nullptr; }
  trace::TraceCapture& trace_capture() { return *trace_capture_; }

  /// First sink of the mirror pipeline (the capture tee when capturing,
  /// else the P4 switch) — the shard's delivery target in parallel mode.
  net::MirrorSink& entry_sink() { return *entry_sink_; }

 private:
  MonitoredSwitchConfig config_;
  net::MirrorSink* entry_sink_ = nullptr;
  std::unique_ptr<telemetry::DataPlaneProgram> program_;
  std::unique_ptr<mpl::ProgramVm> vm_;
  std::unique_ptr<p4::P4Switch> p4_switch_;
  std::unique_ptr<trace::TraceCapture> trace_capture_;
  std::unique_ptr<net::OpticalTapPair> taps_;
  std::unique_ptr<cp::ControlPlane> control_plane_;
};

}  // namespace p4s::core
