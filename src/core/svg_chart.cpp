#include "core/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace p4s::core {

namespace {

// A categorical palette that survives grayscale printing.
const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                         "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Round a span up to a 1/2/5 x 10^k tick step.
double nice_step(double span, int target_ticks) {
  if (span <= 0) return 1.0;
  const double raw = span / target_ticks;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (double m : {1.0, 2.0, 5.0, 10.0}) {
    if (raw <= m * mag) return m * mag;
  }
  return 10.0 * mag;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Emit one chart's body at a vertical offset; returns used height.
void emit_chart(const Chart& chart, std::ostream& out, int y_offset) {
  const int ml = 64, mr = 140, mt = 34, mb = 42;
  const int plot_w = chart.width - ml - mr;
  const int plot_h = chart.height - mt - mb;

  double x_min = 0, x_max = 1, y_min = 0, y_max = 1;
  bool first = true;
  for (const auto& s : chart.series) {
    for (const auto& [x, y] : s.points) {
      if (first) {
        x_min = x_max = x;
        y_min = y_max = y;
        first = false;
      }
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (chart.y_from_zero) y_min = std::min(0.0, y_min);
  if (x_max <= x_min) x_max = x_min + 1;
  if (y_max <= y_min) y_max = y_min + 1;
  y_max *= 1.05;  // headroom

  auto px = [&](double x) {
    return ml + (x - x_min) / (x_max - x_min) * plot_w;
  };
  auto py = [&](double y) {
    return y_offset + mt + plot_h -
           (y - y_min) / (y_max - y_min) * plot_h;
  };

  out << "<g font-family=\"sans-serif\" font-size=\"11\">\n";
  // Frame + title.
  out << "<rect x=\"" << ml << "\" y=\"" << y_offset + mt << "\" width=\""
      << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"#fcfcfc\" stroke=\"#999\"/>\n";
  out << "<text x=\"" << ml << "\" y=\"" << y_offset + mt - 12
      << "\" font-size=\"13\" font-weight=\"bold\">"
      << escape(chart.title) << "</text>\n";

  // Gridlines + ticks.
  const double ys = nice_step(y_max - y_min, 5);
  for (double y = std::ceil(y_min / ys) * ys; y <= y_max; y += ys) {
    out << "<line x1=\"" << ml << "\" y1=\"" << fmt(py(y)) << "\" x2=\""
        << ml + plot_w << "\" y2=\"" << fmt(py(y))
        << "\" stroke=\"#e0e0e0\"/>\n";
    out << "<text x=\"" << ml - 6 << "\" y=\"" << fmt(py(y) + 4)
        << "\" text-anchor=\"end\">" << fmt(y) << "</text>\n";
  }
  const double xs = nice_step(x_max - x_min, 8);
  for (double x = std::ceil(x_min / xs) * xs; x <= x_max; x += xs) {
    out << "<line x1=\"" << fmt(px(x)) << "\" y1=\"" << y_offset + mt
        << "\" x2=\"" << fmt(px(x)) << "\" y2=\"" << y_offset + mt + plot_h
        << "\" stroke=\"#efefef\"/>\n";
    out << "<text x=\"" << fmt(px(x)) << "\" y=\""
        << y_offset + mt + plot_h + 16 << "\" text-anchor=\"middle\">"
        << fmt(x) << "</text>\n";
  }

  // Axis labels.
  out << "<text x=\"" << ml + plot_w / 2 << "\" y=\""
      << y_offset + chart.height - 8 << "\" text-anchor=\"middle\">"
      << escape(chart.x_label) << "</text>\n";
  out << "<text x=\"14\" y=\"" << y_offset + mt + plot_h / 2
      << "\" text-anchor=\"middle\" transform=\"rotate(-90 14 "
      << y_offset + mt + plot_h / 2 << ")\">" << escape(chart.y_label)
      << "</text>\n";

  // Series polylines + legend.
  int idx = 0;
  for (const auto& s : chart.series) {
    const char* color = kColors[idx % (sizeof kColors / sizeof *kColors)];
    out << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"1.6\" points=\"";
    for (const auto& [x, y] : s.points) {
      out << fmt(px(x)) << "," << fmt(py(y)) << " ";
    }
    out << "\"/>\n";
    const int ly = y_offset + mt + 14 + idx * 16;
    out << "<line x1=\"" << ml + plot_w + 8 << "\" y1=\"" << ly - 4
        << "\" x2=\"" << ml + plot_w + 28 << "\" y2=\"" << ly - 4
        << "\" stroke=\"" << color << "\" stroke-width=\"2\"/>\n";
    out << "<text x=\"" << ml + plot_w + 32 << "\" y=\"" << ly << "\">"
        << escape(s.label) << "</text>\n";
    ++idx;
  }
  out << "</g>\n";
}

}  // namespace

void write_svg(const Chart& chart, std::ostream& out) {
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << chart.width << "\" height=\"" << chart.height << "\">\n";
  emit_chart(chart, out, 0);
  out << "</svg>\n";
}

Chart chart_for(const Recorder& recorder, const std::string& title,
                double FlowSample::*metric, const std::string& y_label) {
  Chart chart;
  chart.title = title;
  chart.y_label = y_label;
  for (auto& [label, points] : recorder.series(metric)) {
    chart.series.push_back(ChartSeries{label, points});
  }
  return chart;
}

void write_fig9_panels(const Recorder& recorder, std::ostream& out) {
  const Chart panels[4] = {
      chart_for(recorder, "per-flow throughput",
                &FlowSample::throughput_mbps, "Mbps"),
      chart_for(recorder, "per-flow RTT", &FlowSample::rtt_ms, "ms"),
      chart_for(recorder, "queue occupancy",
                &FlowSample::queue_occupancy_pct, "%"),
      chart_for(recorder, "per-flow packet losses",
                &FlowSample::loss_pct, "% of pkts"),
  };
  const int h = panels[0].height;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << panels[0].width << "\" height=\"" << 4 * h << "\">\n";
  for (int i = 0; i < 4; ++i) emit_chart(panels[i], out, i * h);
  out << "</svg>\n";
}

}  // namespace p4s::core
