#include "core/monitored_switch.hpp"

#include <stdexcept>

#include "controlplane/histogram_extractor.hpp"
#include "controlplane/quic_rtt_extractor.hpp"

namespace p4s::core {

const char* to_string(TapPoint point) {
  switch (point) {
    case TapPoint::kCoreBottleneck: return "core";
    case TapPoint::kWanExt0: return "wan_ext0";
    case TapPoint::kWanExt1: return "wan_ext1";
    case TapPoint::kWanExt2: return "wan_ext2";
  }
  return "?";
}

TapPoint tap_point_from_name(const std::string& name) {
  if (name == "core") return TapPoint::kCoreBottleneck;
  if (name == "wan_ext0") return TapPoint::kWanExt0;
  if (name == "wan_ext1") return TapPoint::kWanExt1;
  if (name == "wan_ext2") return TapPoint::kWanExt2;
  throw std::invalid_argument("unknown tap point: " + name);
}

namespace {

struct TapTarget {
  net::LegacySwitch* sw = nullptr;
  net::OutputPort* port = nullptr;
  std::uint64_t rate_bps = 0;
};

TapTarget resolve_tap(net::PaperTopology& topology, TapPoint tap) {
  switch (tap) {
    case TapPoint::kCoreBottleneck:
      return {topology.core_switch, topology.bottleneck_port,
              topology.config.bottleneck_bps};
    case TapPoint::kWanExt0:
      return {topology.wan_switch, topology.ext_dtn_links[0].forward,
              topology.config.access_bps};
    case TapPoint::kWanExt1:
      return {topology.wan_switch, topology.ext_dtn_links[1].forward,
              topology.config.access_bps};
    case TapPoint::kWanExt2:
      return {topology.wan_switch, topology.ext_dtn_links[2].forward,
              topology.config.access_bps};
  }
  throw std::invalid_argument("unknown tap point");
}

}  // namespace

MonitoredSwitch::MonitoredSwitch(
    sim::Simulation& sim, net::PaperTopology& topology,
    const MonitoredSwitchConfig& config,
    const telemetry::DataPlaneProgram::Config& program_config,
    cp::ControlPlaneConfig control_config,
    const TraceCaptureConfig& trace_config,
    const std::vector<mpl::Program>& fabric_programs, SimTime tap_latency,
    std::size_t index, sim::Simulation* pipeline_sim)
    : config_(config) {
  const TapTarget target = resolve_tap(topology, config_.tap);

  // The mirror pipeline's components read their timestamps (P4
  // ingress_ts, pcap records) from this clock: the main timeline when
  // serial, the shard-advanced pipeline clock when parallel — both sit
  // at the frame's delivery time at delivery, so outputs are identical.
  sim::Simulation& pipe_sim = pipeline_sim != nullptr ? *pipeline_sim : sim;

  program_ = std::make_unique<telemetry::DataPlaneProgram>(program_config);
  // Every site carries a measurement-program VM behind the engine
  // registry; with nothing installed it is a no-op on the packet path
  // and the report stream is untouched.
  vm_ = std::make_unique<mpl::ProgramVm>();
  program_->register_packet_engine(*vm_);
  const std::string name =
      config_.id.empty() ? "tofino-monitor" : "tofino-" + config_.id;
  p4_switch_ = std::make_unique<p4::P4Switch>(pipe_sim, name);
  p4_switch_->load_program(*program_);

  // With capture enabled the TAPs feed a pcap-writing tee that forwards
  // every mirrored frame to the P4 switch unchanged. Switch 0 keeps the
  // configured path_base (so existing captures stay byte-identical);
  // further switches get a per-site suffix.
  net::MirrorSink* mirror_sink = p4_switch_.get();
  if (trace_config.capture) {
    std::string path_base = trace_config.path_base;
    if (index > 0) {
      path_base +=
          "." + (config_.id.empty() ? std::to_string(index) : config_.id);
    }
    trace_capture_ = std::make_unique<trace::TraceCapture>(
        pipe_sim, *p4_switch_, path_base,
        trace::TraceCapture::Config{trace_config.snaplen});
    mirror_sink = trace_capture_.get();
  }
  entry_sink_ = mirror_sink;

  taps_ = std::make_unique<net::OpticalTapPair>(sim, *mirror_sink,
                                                tap_latency);
  taps_->attach(*target.sw, *target.port);

  // Fill control-plane knowledge of the monitored switch from the tapped
  // port unless the caller overrode it.
  if (control_config.core_buffer_bytes == 0) {
    control_config.core_buffer_bytes = target.port->queue().capacity_bytes();
  }
  if (control_config.bottleneck_bps == 0) {
    control_config.bottleneck_bps = target.rate_bps;
  }
  control_config.switch_id = config_.id;
  control_plane_ = std::make_unique<cp::ControlPlane>(
      sim, *program_, std::move(control_config));
  // One extraction timer per configured histogram engine (none by
  // default — the default control plane is untouched).
  cp::register_histogram_extractors(*control_plane_, *program_);
  // Encrypted-traffic engines (both no-ops unless the program config
  // enabled them): the spin-bit RTT engine gets its own extraction
  // timer; the NIDS feature engine exports through the digest poll.
  cp::register_quic_rtt_extractor(*control_plane_, *program_);
  cp::register_nids_digest_source(*control_plane_, *program_);
  // Bind the VM (its export extractors and digest source hang off this
  // control plane), then install fabric-wide and site programs — site
  // entries replace same-named fabric-wide ones.
  vm_->bind(*control_plane_);
  for (const mpl::Program& program : fabric_programs) vm_->install(program);
  for (const mpl::Program& program : config_.programs) vm_->install(program);
}

}  // namespace p4s::core
