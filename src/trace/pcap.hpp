// Classic libpcap capture files — the 24-byte global header plus 16-byte
// per-record headers tcpdump has written since the 1990s.
//
// The writer emits the nanosecond-resolution magic (0xa1b23c4d) in
// little-endian byte order with LINKTYPE_ETHERNET, so the simulator's
// integer-nanosecond timestamps survive a round trip exactly and the
// files open in tcpdump/Wireshark/scapy unmodified. The reader accepts
// both byte orders and both timestamp resolutions (microsecond magic
// 0xa1b2c3d4, nanosecond magic 0xa1b23c4d), so real-world captures from
// foreign tools load too. Malformed or truncated files raise PcapError —
// a clean, catchable failure, never a crash.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace p4s::trace {

inline constexpr std::uint32_t kPcapMagicNano = 0xa1b23c4d;
inline constexpr std::uint32_t kPcapMagicMicro = 0xa1b2c3d4;
inline constexpr std::uint16_t kPcapVersionMajor = 2;
inline constexpr std::uint16_t kPcapVersionMinor = 4;
inline constexpr std::uint32_t kLinktypeEthernet = 1;
inline constexpr std::uint32_t kDefaultSnaplen = 65535;

inline constexpr std::size_t kPcapGlobalHeaderBytes = 24;
inline constexpr std::size_t kPcapRecordHeaderBytes = 16;

/// Thrown on malformed or truncated capture files and on write failures.
class PcapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One captured frame. `orig_len` is the frame's length on the wire;
/// `bytes` holds the captured prefix (<= orig_len when the capture was
/// snaplen-truncated — ours always are, since payload bytes are virtual).
struct PcapRecord {
  SimTime ts = 0;  // nanoseconds
  std::uint32_t orig_len = 0;
  std::vector<std::uint8_t> bytes;
};

class PcapWriter {
 public:
  /// Write to a caller-owned stream (tests, in-memory captures).
  explicit PcapWriter(std::ostream& out,
                      std::uint32_t snaplen = kDefaultSnaplen);
  /// Open `path` for writing (truncates). Throws PcapError on failure.
  explicit PcapWriter(const std::string& path,
                      std::uint32_t snaplen = kDefaultSnaplen);

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Append one record. `orig_len == 0` means "frame.size()". Frames
  /// longer than the snaplen are truncated (orig_len keeps the full
  /// length). Throws PcapError if the stream went bad.
  void write(SimTime ts, std::span<const std::uint8_t> frame,
             std::uint32_t orig_len = 0);

  std::uint64_t records() const { return records_; }
  void flush();

 private:
  void write_global_header();

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::uint32_t snaplen_;
  std::uint64_t records_ = 0;
};

class PcapReader {
 public:
  struct FileInfo {
    bool nanosecond = false;  // else microsecond timestamps
    bool swapped = false;     // file byte order != reader byte handling
    std::uint16_t version_major = 0;
    std::uint16_t version_minor = 0;
    std::uint32_t snaplen = 0;
    std::uint32_t linktype = 0;
  };

  /// Parse the global header from a caller-owned stream. Throws PcapError
  /// on a short or unrecognizable header.
  explicit PcapReader(std::istream& in);
  /// Open `path` and parse its global header. Throws PcapError.
  explicit PcapReader(const std::string& path);

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  const FileInfo& info() const { return info_; }

  /// Next record; nullopt at clean end of file. Timestamps are always
  /// returned in nanoseconds (microsecond files are scaled). Throws
  /// PcapError on a record truncated mid-header or mid-payload, or on an
  /// incl_len exceeding the snaplen (corrupt length field).
  std::optional<PcapRecord> next();

  std::uint64_t records_read() const { return records_read_; }

  /// Convenience: open, read every record, return them. `info_out`
  /// receives the file header when non-null. Throws PcapError.
  static std::vector<PcapRecord> read_all(const std::string& path,
                                          FileInfo* info_out = nullptr);

 private:
  void parse_global_header();

  std::unique_ptr<std::ifstream> owned_;
  std::istream* in_;
  FileInfo info_;
  std::uint64_t records_read_ = 0;
};

}  // namespace p4s::trace
