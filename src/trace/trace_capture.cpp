#include "trace/trace_capture.hpp"

#include "net/wire.hpp"

namespace p4s::trace {

TraceCapture::TraceCapture(sim::Simulation& sim, net::MirrorSink& next,
                           std::ostream& ingress_out,
                           std::ostream& egress_out, Config config)
    : sim_(sim),
      next_(next),
      ingress_(std::make_unique<PcapWriter>(ingress_out, config.snaplen)),
      egress_(std::make_unique<PcapWriter>(egress_out, config.snaplen)) {}

TraceCapture::TraceCapture(sim::Simulation& sim, net::MirrorSink& next,
                           const std::string& path_base, Config config)
    : sim_(sim),
      next_(next),
      ingress_(std::make_unique<PcapWriter>(
          port_path(path_base, net::MirrorPoint::kIngress), config.snaplen)),
      egress_(std::make_unique<PcapWriter>(
          port_path(path_base, net::MirrorPoint::kEgress), config.snaplen)) {}

std::string TraceCapture::port_path(const std::string& base,
                                    net::MirrorPoint point) {
  return base + (point == net::MirrorPoint::kIngress ? ".ingress.pcap"
                                                     : ".egress.pcap");
}

void TraceCapture::on_mirrored(const net::Packet& pkt,
                               net::MirrorPoint point) {
  // Packet-level entry: serialize here so the record carries real bytes.
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  const std::size_t len = net::serialize_headers(pkt, buf);
  record(pkt, std::span<const std::uint8_t>(buf.data(), len), point);
  next_.on_mirrored(pkt, point);
}

void TraceCapture::on_mirrored_wire(const net::Packet& pkt,
                                    std::span<const std::uint8_t> bytes,
                                    net::MirrorPoint point) {
  record(pkt, bytes, point);
  next_.on_mirrored_wire(pkt, bytes, point);
}

void TraceCapture::on_mirrored_bytes(std::span<const std::uint8_t> bytes,
                                     net::MirrorPoint point,
                                     std::uint32_t wire_len) {
  // Boundary entry (parallel fabric): the frame carried its on-wire
  // length across, and `sim_` is the shard clock sitting at the frame's
  // delivery time — the record is byte-identical to the serial path's.
  writer(point).write(sim_.now(), bytes,
                      wire_len >= bytes.size()
                          ? wire_len
                          : static_cast<std::uint32_t>(bytes.size()));
  next_.on_mirrored_bytes(bytes, point, wire_len);
}

void TraceCapture::record(const net::Packet& pkt,
                          std::span<const std::uint8_t> bytes,
                          net::MirrorPoint point) {
  // On the wire this frame was Ethernet + the IP total length; we only
  // captured the serialized headers (payloads are virtual).
  const std::uint32_t orig_len = static_cast<std::uint32_t>(
      net::kEthernetHeaderBytes + pkt.ip.total_len);
  writer(point).write(sim_.now(), bytes,
                      orig_len >= bytes.size()
                          ? orig_len
                          : static_cast<std::uint32_t>(bytes.size()));
}

void TraceCapture::flush() {
  ingress_->flush();
  egress_->flush();
}

}  // namespace p4s::trace
