// TraceReplayer — feeds a recorded (or foreign) pcap trace straight into
// the P4 monitoring pipeline, with no TCP simulator behind it.
//
// A trace is the merged stream of the two capture ports (ingress TAP,
// egress TAP). Replay has two speeds:
//
//   * paced   — schedule(): every frame becomes an event on the
//     simulation's queue at its recorded nanosecond timestamp, so the
//     P4 switch's intrinsic ingress timestamps, the control plane's
//     extraction timers and the digest polls interleave exactly as they
//     did in the live run. This is what makes a captured run a
//     deterministic regression artifact.
//   * max speed — replay_now(): frames are pushed through the pipeline
//     back to back with no event-queue round trip, for pure
//     parse+pipeline throughput benchmarking.
//
// Real-world captures are first-class inputs: frames with payload bytes,
// IPv4 options or EtherTypes we never produce are counted by analyze()
// and flow through the parser's tolerant paths — never a crash.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "controlplane/control_plane.hpp"
#include "mpl/vm.hpp"
#include "net/tap.hpp"
#include "p4/p4_switch.hpp"
#include "sim/simulation.hpp"
#include "telemetry/dataplane_program.hpp"
#include "trace/pcap.hpp"

namespace p4s::trace {

/// One frame of a merged trace: wire bytes plus capture metadata.
struct TraceFrame {
  SimTime ts = 0;
  net::MirrorPoint point = net::MirrorPoint::kIngress;
  std::uint32_t orig_len = 0;
  std::vector<std::uint8_t> bytes;
};

class TraceReplayer {
 public:
  /// What a trace contains, by the categories the pipeline cares about.
  /// "Tolerated" frame classes (foreign EtherTypes, IPv4 options, payload
  /// bytes, undecodable headers) are counted here and simply flow through
  /// the parser's accept/reject paths during replay.
  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t ingress_frames = 0;
    std::uint64_t egress_frames = 0;
    std::uint64_t captured_bytes = 0;  // bytes stored in the trace
    std::uint64_t wire_bytes = 0;      // original on-wire bytes (orig_len)
    std::uint64_t ipv4 = 0;
    std::uint64_t non_ipv4 = 0;       // unknown EtherType: counted, skipped
    std::uint64_t ipv4_options = 0;   // IHL > 5: options skipped by parsers
    std::uint64_t with_payload = 0;   // captured bytes beyond the headers
    std::uint64_t tcp = 0;
    std::uint64_t udp = 0;
    std::uint64_t quic = 0;       // UDP frames carrying a QUIC header
    std::uint64_t quic_long = 0;  // of which long-header (handshake)
    std::uint64_t icmp = 0;
    std::uint64_t other_l4 = 0;       // unknown IP protocol
    std::uint64_t undecodable = 0;    // too short for Ethernet+IPv4 headers
    std::map<std::uint16_t, std::uint64_t> ethertypes;
    SimTime first_ts = 0;
    SimTime last_ts = 0;
  };

  /// Load the ingress-port capture and (optionally) the egress-port
  /// capture and merge them into one stream ordered by timestamp; ties
  /// deliver the ingress-TAP frame first, matching the live TAP pair
  /// (the ingress mirror of a packet always precedes its egress mirror,
  /// and cross-packet same-nanosecond order is ingress-arrival first).
  /// Throws PcapError on unreadable or malformed files.
  static TraceReplayer from_files(const std::string& ingress_path,
                                  const std::string& egress_path = "");

  /// Build from frames already in memory (tests, synthetic workloads).
  /// Frames are used in the given order; call with a timestamp-sorted
  /// sequence for paced replay.
  static TraceReplayer from_frames(std::vector<TraceFrame> frames);

  const std::vector<TraceFrame>& frames() const { return frames_; }

  Stats analyze() const;

  /// Paced replay: stream the frames through `sim`'s event queue, each
  /// delivered to `sink` at its recorded timestamp (frames whose ts is
  /// already in the past fire at now()). Delivery uses the wire-level
  /// mirror hook, so byte-parsing sinks (the P4 switch) are the intended
  /// target. Returns immediately; run the simulation to execute. The
  /// replayer must outlive the run (frames are not copied into events).
  void schedule(sim::Simulation& sim, net::MirrorSink& sink) const;

  /// Max-speed replay: deliver every frame back to back. With
  /// `advance_clock`, the simulation clock is advanced to each frame's
  /// timestamp first (running any due events — e.g. control-plane
  /// timers), so telemetry still sees real inter-arrival times; without
  /// it, all frames land at now() (pure pipeline throughput).
  void replay_now(sim::Simulation& sim, net::MirrorSink& sink,
                  bool advance_clock = true) const;

 private:
  // Streaming scheduler state shared by the per-frame events.
  struct Cursor;

  std::vector<TraceFrame> frames_;
};

/// ReplayPipeline — the monitoring stack without the network: a fresh
/// simulation, the telemetry data-plane program loaded into a P4 switch,
/// and a control plane whose Report_v1 documents are collected as dumped
/// JSON lines (in emission order, so two runs compare byte for byte).
class ReplayPipeline : public cp::ReportSink {
 public:
  struct Config {
    telemetry::DataPlaneProgram::Config program;
    cp::ControlPlaneConfig control;
    /// Measurement programs installed on the pipeline's VM before the
    /// run (p4s-trace replay --program <file.mpl.json>).
    std::vector<mpl::Program> programs;
    std::uint64_t seed = 1;
  };

  explicit ReplayPipeline(Config config);

  ReplayPipeline(const ReplayPipeline&) = delete;
  ReplayPipeline& operator=(const ReplayPipeline&) = delete;

  sim::Simulation& simulation() { return sim_; }
  telemetry::DataPlaneProgram& program() { return program_; }
  p4::P4Switch& p4_switch() { return p4_switch_; }
  cp::ControlPlane& control_plane() { return control_plane_; }
  mpl::ProgramVm& program_vm() { return vm_; }

  /// Report_v1 documents in emission order, one dumped JSON line each.
  const std::vector<std::string>& report_lines() const { return reports_; }

  /// Start the control-plane timers (configure sample rates first),
  /// schedule the trace paced by its timestamps, and run the simulation
  /// until `until` (pick a horizon past the trace's last timestamp so
  /// idle-flow finalization fires like it did live).
  void run(const TraceReplayer& trace, SimTime until);

  void on_report(const util::Json& report) override;

 private:
  sim::Simulation sim_;
  telemetry::DataPlaneProgram program_;
  p4::P4Switch p4_switch_;
  cp::ControlPlane control_plane_;
  mpl::ProgramVm vm_;
  std::vector<std::string> reports_;
};

}  // namespace p4s::trace
