#include "trace/trace_replayer.hpp"

#include <algorithm>
#include <utility>

#include "net/packet.hpp"
#include "net/wire.hpp"

namespace p4s::trace {

namespace {

std::vector<TraceFrame> load_port(const std::string& path,
                                  net::MirrorPoint point) {
  std::vector<TraceFrame> frames;
  PcapReader reader(path);
  while (auto rec = reader.next()) {
    TraceFrame f;
    f.ts = rec->ts;
    f.point = point;
    f.orig_len = rec->orig_len;
    f.bytes = std::move(rec->bytes);
    frames.push_back(std::move(f));
  }
  return frames;
}

std::uint16_t ethertype_of(const std::vector<std::uint8_t>& b) {
  return static_cast<std::uint16_t>((b[12] << 8) | b[13]);
}

}  // namespace

TraceReplayer TraceReplayer::from_files(const std::string& ingress_path,
                                        const std::string& egress_path) {
  std::vector<TraceFrame> in = load_port(ingress_path,
                                         net::MirrorPoint::kIngress);
  std::vector<TraceFrame> eg;
  if (!egress_path.empty()) {
    eg = load_port(egress_path, net::MirrorPoint::kEgress);
  }
  // Two-pointer merge of the (per-file chronological) streams. On equal
  // timestamps the ingress frame goes first — <= keeps the merge stable
  // in the ingress stream's favor, reproducing the live TAP pair's order.
  std::vector<TraceFrame> merged;
  merged.reserve(in.size() + eg.size());
  std::size_t i = 0;
  std::size_t e = 0;
  while (i < in.size() && e < eg.size()) {
    if (in[i].ts <= eg[e].ts) {
      merged.push_back(std::move(in[i++]));
    } else {
      merged.push_back(std::move(eg[e++]));
    }
  }
  while (i < in.size()) merged.push_back(std::move(in[i++]));
  while (e < eg.size()) merged.push_back(std::move(eg[e++]));
  return from_frames(std::move(merged));
}

TraceReplayer TraceReplayer::from_frames(std::vector<TraceFrame> frames) {
  TraceReplayer r;
  r.frames_ = std::move(frames);
  return r;
}

TraceReplayer::Stats TraceReplayer::analyze() const {
  Stats s;
  for (const TraceFrame& f : frames_) {
    ++s.frames;
    if (f.point == net::MirrorPoint::kIngress) {
      ++s.ingress_frames;
    } else {
      ++s.egress_frames;
    }
    s.captured_bytes += f.bytes.size();
    s.wire_bytes += f.orig_len;
    if (s.frames == 1) s.first_ts = f.ts;
    s.last_ts = f.ts;

    if (f.bytes.size() < net::kEthernetHeaderBytes) {
      ++s.undecodable;
      continue;
    }
    const std::uint16_t ethertype = ethertype_of(f.bytes);
    ++s.ethertypes[ethertype];
    if (ethertype != net::kEtherTypeIpv4) {
      ++s.non_ipv4;
      continue;
    }
    const std::uint8_t* ip = f.bytes.data() + net::kEthernetHeaderBytes;
    const std::size_t ip_avail = f.bytes.size() - net::kEthernetHeaderBytes;
    if (ip_avail < 20 || (ip[0] >> 4) != 4) {
      ++s.undecodable;
      continue;
    }
    ++s.ipv4;
    const std::size_t ihl_bytes = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
    if (ihl_bytes > 20) ++s.ipv4_options;
    const std::uint16_t total_len =
        static_cast<std::uint16_t>((ip[2] << 8) | ip[3]);
    switch (ip[9]) {
      case 6:
        ++s.tcp;
        // Captured payload bytes start after the TCP header (data offset).
        if (ip_avail >= ihl_bytes + 13) {
          const std::size_t l4 =
              static_cast<std::size_t>(ip[ihl_bytes + 12] >> 4) * 4;
          if (total_len > ihl_bytes + l4) ++s.with_payload;
        }
        break;
      case 17: {
        ++s.udp;
        if (total_len > ihl_bytes + 8) ++s.with_payload;
        // QUIC rides UDP: the fixed bit (0x40) is set on both header
        // forms, and the captured datagram must cover at least the
        // 13-byte short header to count.
        const std::size_t udp_payload_off = ihl_bytes + 8;
        if (ip_avail >= udp_payload_off + net::kQuicShortHeaderBytes &&
            (ip[udp_payload_off] & 0x40) != 0) {
          ++s.quic;
          if ((ip[udp_payload_off] & 0x80) != 0) ++s.quic_long;
        }
        break;
      }
      case 1:
        ++s.icmp;
        if (total_len > ihl_bytes + 8) ++s.with_payload;
        break;
      default:
        ++s.other_l4;
        break;
    }
  }
  return s;
}

// Streaming scheduler: one event in flight at a time. The event for frame
// i delivers it and schedules frame i+1, so N frames never sit on the
// queue at once and the merged file order survives even when many frames
// share a nanosecond (the queue's FIFO tie-break sees them arrive in
// sequence).
struct TraceReplayer::Cursor {
  const std::vector<TraceFrame>* frames = nullptr;
  std::size_t next = 0;
  sim::Simulation* sim = nullptr;
  net::MirrorSink* sink = nullptr;

  static void step(const std::shared_ptr<Cursor>& self) {
    const TraceFrame& f = (*self->frames)[self->next++];
    self->sink->on_mirrored_wire(net::Packet{}, f.bytes, f.point);
    if (self->next >= self->frames->size()) return;
    const SimTime at =
        std::max((*self->frames)[self->next].ts, self->sim->now());
    self->sim->at(at, [self]() { step(self); });
  }
};

void TraceReplayer::schedule(sim::Simulation& sim,
                             net::MirrorSink& sink) const {
  if (frames_.empty()) return;
  // Each event lambda captures the shared cursor, so the state lives
  // until the last frame is delivered. The frames themselves are read
  // through a pointer: the replayer must outlive the run.
  auto cursor = std::make_shared<Cursor>();
  cursor->frames = &frames_;
  cursor->sim = &sim;
  cursor->sink = &sink;
  sim.at(std::max(frames_.front().ts, sim.now()),
         [cursor]() { Cursor::step(cursor); });
}

void TraceReplayer::replay_now(sim::Simulation& sim, net::MirrorSink& sink,
                               bool advance_clock) const {
  for (const TraceFrame& f : frames_) {
    if (advance_clock && f.ts > sim.now()) sim.run_until(f.ts);
    sink.on_mirrored_wire(net::Packet{}, f.bytes, f.point);
  }
}

// ------------------------------------------------------------- pipeline

ReplayPipeline::ReplayPipeline(Config config)
    : sim_(config.seed),
      program_(config.program),
      p4_switch_(sim_, "replay-p4"),
      control_plane_(sim_, program_, config.control) {
  p4_switch_.load_program(program_);
  control_plane_.set_sink(this);
  program_.register_packet_engine(vm_);
  vm_.bind(control_plane_);
  for (const mpl::Program& p : config.programs) vm_.install(p);
}

void ReplayPipeline::on_report(const util::Json& report) {
  reports_.push_back(report.dump());
}

void ReplayPipeline::run(const TraceReplayer& trace, SimTime until) {
  control_plane_.start();
  trace.schedule(sim_, p4_switch_);
  sim_.run_until(until);
}

}  // namespace p4s::trace
