// p4s-trace — command-line front end for the trace subsystem.
//
//   p4s-trace info   <file.pcap>...
//   p4s-trace stats  <ingress.pcap> [<egress.pcap>]
//   p4s-trace replay <ingress.pcap> [<egress.pcap>] [flags]
//
// `info` prints each file's global header and record summary, `stats`
// analyzes the merged trace by the pipeline's frame categories, `replay`
// pushes the trace through a fresh P4 switch + control plane (paced by
// the recorded timestamps, or --max-speed for throughput). The entry
// point is separated from main() so tests can drive it in-process.
#pragma once

#include <ostream>

namespace p4s::trace {

/// Runs the tool; returns the process exit code (0 ok, 2 usage or bad
/// input). Malformed or truncated capture files produce a one-line error
/// on `err`, never a crash.
int trace_cli(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace p4s::trace
