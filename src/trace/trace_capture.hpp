// TraceCapture — turns a live run's mirrored traffic into portable pcap
// artifacts.
//
// The capture is a MirrorSink tee: it sits between the optical TAP pair
// and the P4 switch, records every mirrored frame's wire bytes with the
// simulation timestamp at delivery, and forwards the frame unchanged.
// The two TAPs are distinct capture ports — exactly as the paper cables
// each TAP into its own Tofino port — so each mirror point gets its own
// pcap file: `<base>.ingress.pcap` and `<base>.egress.pcap`, both
// LINKTYPE_ETHERNET with nanosecond timestamps. Because wire bytes are
// header-only (payloads are virtual), records carry the true on-wire
// frame length in orig_len and the serialized headers as the captured
// prefix — the standard shape of a snaplen-limited capture, which
// external tools display as expected.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "net/tap.hpp"
#include "sim/simulation.hpp"
#include "trace/pcap.hpp"

namespace p4s::trace {

struct CaptureConfig {
  std::uint32_t snaplen = kDefaultSnaplen;
};

class TraceCapture : public net::MirrorSink {
 public:
  using Config = CaptureConfig;

  /// Capture into caller-owned streams (tests, in-memory round trips).
  TraceCapture(sim::Simulation& sim, net::MirrorSink& next,
               std::ostream& ingress_out, std::ostream& egress_out,
               Config config = {});
  /// Capture into `<path_base>.ingress.pcap` / `<path_base>.egress.pcap`.
  /// Throws PcapError if either file cannot be created.
  TraceCapture(sim::Simulation& sim, net::MirrorSink& next,
               const std::string& path_base, Config config = {});

  void on_mirrored(const net::Packet& pkt, net::MirrorPoint point) override;
  void on_mirrored_wire(const net::Packet& pkt,
                        std::span<const std::uint8_t> bytes,
                        net::MirrorPoint point) override;
  void on_mirrored_bytes(std::span<const std::uint8_t> bytes,
                         net::MirrorPoint point,
                         std::uint32_t wire_len) override;

  std::uint64_t captured(net::MirrorPoint point) const {
    return writer(point).records();
  }
  std::uint64_t captured_total() const {
    return ingress_->records() + egress_->records();
  }
  void flush();

  /// The per-port file naming convention.
  static std::string port_path(const std::string& base,
                               net::MirrorPoint point);

 private:
  PcapWriter& writer(net::MirrorPoint point) {
    return point == net::MirrorPoint::kIngress ? *ingress_ : *egress_;
  }
  const PcapWriter& writer(net::MirrorPoint point) const {
    return point == net::MirrorPoint::kIngress ? *ingress_ : *egress_;
  }
  void record(const net::Packet& pkt, std::span<const std::uint8_t> bytes,
              net::MirrorPoint point);

  sim::Simulation& sim_;
  net::MirrorSink& next_;
  std::unique_ptr<PcapWriter> ingress_;
  std::unique_ptr<PcapWriter> egress_;
};

}  // namespace p4s::trace
