#include "trace/trace_cli.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mpl/compiler.hpp"
#include "net/wire.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_replayer.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace p4s::trace {

namespace {

void usage(std::ostream& err) {
  err << "usage: p4s-trace <command> [args]\n"
         "\n"
         "commands:\n"
         "  info   <file.pcap>...            print file header + record "
         "summary\n"
         "  stats  <ingress.pcap> [<egress.pcap>]\n"
         "         [--histogram rtt|iat|queue_delay] [--bins N]\n"
         "         [--hist-min-us X] [--hist-max-ms Y] [--flows N]\n"
         "                                   analyze the merged trace; "
         "with\n"
         "                                   --histogram, replay it "
         "through the\n"
         "                                   pipeline and render the "
         "metric's\n"
         "                                   bin counts and quantiles; "
         "with no\n"
         "                                   metric name, list the "
         "metrics the\n"
         "                                   capture offers\n"
         "  replay <ingress.pcap> [<egress.pcap>] [--max-speed]\n"
         "         [--samples-per-second N] [--seed N] [--runout-seconds S]\n"
         "         [--buffer-bytes B] [--bottleneck-bps R] "
         "[--print-reports]\n"
         "         [--program <file.mpl.json>]\n"
         "                                   replay through the P4 "
         "pipeline;\n"
         "                                   --program installs a "
         "measurement\n"
         "                                   program on the pipeline's "
         "VM\n";
}

std::string fmt_seconds(SimTime ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", units::to_seconds(ns));
  return buf;
}

std::string fmt_ms(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

int cmd_info(const std::vector<std::string>& files, std::ostream& out) {
  for (const auto& path : files) {
    PcapReader reader(path);
    const auto& info = reader.info();
    std::uint64_t records = 0;
    std::uint64_t captured = 0;
    std::uint64_t wire = 0;
    SimTime first = 0;
    SimTime last = 0;
    while (auto rec = reader.next()) {
      if (records == 0) first = rec->ts;
      last = rec->ts;
      captured += rec->bytes.size();
      wire += rec->orig_len;
      ++records;
    }
    out << path << ":\n"
        << "  format: pcap " << info.version_major << "."
        << info.version_minor << ", "
        << (info.nanosecond ? "nanosecond" : "microsecond")
        << " timestamps, "
        << (info.swapped ? "swapped" : "native") << " byte order\n"
        << "  linktype: " << info.linktype
        << (info.linktype == kLinktypeEthernet ? " (Ethernet)" : "")
        << ", snaplen: " << info.snaplen << "\n"
        << "  records: " << records << " (" << captured
        << " captured bytes, " << wire << " on the wire)\n";
    if (records > 0) {
      out << "  time span: " << fmt_seconds(first) << "s .. "
          << fmt_seconds(last) << "s (duration "
          << fmt_seconds(last - first) << "s)\n";
    }
  }
  return 0;
}

// Replay the capture through one engine of every histogram metric and
// list what each would observe — the discovery path for `--histogram`
// with no (or an unknown) metric name.
void list_histogram_metrics(const TraceReplayer& trace, std::ostream& out) {
  ReplayPipeline::Config config;
  for (const auto metric :
       {telemetry::HistogramEngineConfig::Metric::kRtt,
        telemetry::HistogramEngineConfig::Metric::kIat,
        telemetry::HistogramEngineConfig::Metric::kQueueDelay}) {
    telemetry::HistogramEngineConfig hc;
    hc.metric = metric;
    config.program.histograms.push_back(hc);
  }
  ReplayPipeline pipeline(config);
  trace.replay_now(pipeline.simulation(), pipeline.p4_switch(),
                   /*advance_clock=*/true);
  out << "available histogram metrics in this capture:\n";
  for (const auto& engine : pipeline.program().histogram_engines()) {
    out << "  " << engine->name() << ": " << engine->samples()
        << " samples\n";
  }
}

// Render the bin counts of a replayed capture's histogram engine: one
// row per bin with an ASCII bar, then the sketch quantiles.
int render_histogram(const TraceReplayer& trace, const util::CliArgs& args,
                     std::ostream& out, std::ostream& err) {
  telemetry::HistogramEngineConfig hc;
  const std::string metric_arg = *args.get("histogram");
  if (metric_arg.empty()) {
    // `--histogram` with no metric: list what the capture offers.
    list_histogram_metrics(trace, out);
    return 0;
  }
  try {
    hc.metric = telemetry::histogram_metric_from_name(metric_arg);
  } catch (const std::invalid_argument& e) {
    err << "p4s-trace stats: " << e.what() << "\n";
    list_histogram_metrics(trace, err);
    return 2;
  }
  hc.histogram.bins = args.uint_or("bins", 32);
  hc.histogram.min = args.number_or("hist-min-us", 10.0) * 1e3;   // -> ns
  hc.histogram.max = args.number_or("hist-max-ms", 1000.0) * 1e6;  // -> ns
  if (!(hc.histogram.bins > 0 && hc.histogram.min > 0.0 &&
        hc.histogram.min < hc.histogram.max)) {
    err << "p4s-trace stats: histogram bounds must satisfy 0 < "
           "--hist-min-us < --hist-max-ms and --bins > 0\n";
    return 2;
  }

  ReplayPipeline::Config config;
  config.program.histograms.push_back(hc);
  ReplayPipeline pipeline(config);
  trace.replay_now(pipeline.simulation(), pipeline.p4_switch(),
                   /*advance_clock=*/true);

  const telemetry::HistogramEngine& engine =
      *pipeline.program().histogram_engines().front();
  const sketch::Histogram& hist = engine.histogram();
  out << engine.name() << ": " << engine.samples() << " samples\n";
  if (hist.underflow() > 0) {
    out << "  underflow (< " << fmt_ms(hist.config().min) << " ms): "
        << hist.underflow() << "\n";
  }
  std::uint64_t peak = 1;
  for (std::size_t b = 0; b < hist.config().bins; ++b) {
    peak = std::max(peak, hist.count(b));
  }
  for (std::size_t b = 0; b < hist.config().bins; ++b) {
    const std::uint64_t count = hist.count(b);
    if (count == 0) continue;
    const auto width = static_cast<std::size_t>(40 * count / peak);
    out << "  [" << fmt_ms(hist.bin_lower(b)) << " ms, "
        << fmt_ms(hist.bin_upper(b)) << " ms) " << count << " "
        << std::string(width, '#') << "\n";
  }
  if (hist.overflow() > 0) {
    out << "  overflow (>= " << fmt_ms(hist.config().max) << " ms): "
        << hist.overflow() << "\n";
  }
  for (const double q : {0.50, 0.95, 0.99}) {
    out << "  p" << static_cast<int>(q * 100) << ": "
        << fmt_ms(engine.quantile_ns(q)) << " ms\n";
  }
  return 0;
}

// Top-talker table: aggregate ingress frames (one copy per packet; the
// egress mirror would double-count) by 5-tuple and print the top N by
// wire bytes.
void print_top_flows(const TraceReplayer& trace, std::size_t top_n,
                     std::ostream& out) {
  struct FlowAgg {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, FlowAgg> flows;
  for (const TraceFrame& f : trace.frames()) {
    if (f.point != net::MirrorPoint::kIngress) continue;
    const std::optional<net::Packet> parsed =
        net::parse_headers({f.bytes.data(), f.bytes.size()});
    if (!parsed.has_value()) continue;
    const net::Packet& pkt = *parsed;
    char key[96];
    const char* proto = pkt.is_tcp()    ? "tcp"
                        : pkt.is_quic() ? "quic"
                        : pkt.is_udp()  ? "udp"
                                        : "ip";
    const std::uint16_t src_port = pkt.is_tcp()   ? pkt.tcp().src_port
                                   : pkt.is_udp() ? pkt.udp().src_port
                                                  : 0;
    const std::uint16_t dst_port = pkt.is_tcp()   ? pkt.tcp().dst_port
                                   : pkt.is_udp() ? pkt.udp().dst_port
                                                  : 0;
    std::snprintf(key, sizeof(key), "%s %s:%u -> %s:%u", proto,
                  net::to_string(pkt.ip.src).c_str(), src_port,
                  net::to_string(pkt.ip.dst).c_str(), dst_port);
    FlowAgg& agg = flows[key];
    ++agg.frames;
    agg.bytes += f.orig_len;
  }
  std::vector<std::pair<std::string, FlowAgg>> ranked(flows.begin(),
                                                      flows.end());
  // Bytes descending; the map key (already sorted) breaks ties so the
  // listing is deterministic.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.bytes > b.second.bytes;
                   });
  out << "flows: " << ranked.size() << " (top " << std::min(top_n, ranked.size())
      << " by bytes, ingress frames only)\n";
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    out << "  " << ranked[i].first << ": " << ranked[i].second.frames
        << " frames, " << ranked[i].second.bytes << " bytes\n";
  }
}

int cmd_stats(const util::CliArgs& args,
              const std::vector<std::string>& files, std::ostream& out,
              std::ostream& err) {
  const TraceReplayer trace = TraceReplayer::from_files(
      files[0], files.size() > 1 ? files[1] : "");
  if (args.has("histogram")) {
    return render_histogram(trace, args, out, err);
  }
  const auto s = trace.analyze();
  out << "frames: " << s.frames << " (ingress " << s.ingress_frames
      << ", egress " << s.egress_frames << ")\n"
      << "bytes: " << s.captured_bytes << " captured, " << s.wire_bytes
      << " on the wire\n";
  if (s.frames > 0) {
    out << "time span: " << fmt_seconds(s.first_ts) << "s .. "
        << fmt_seconds(s.last_ts) << "s\n";
  }
  out << "ipv4: " << s.ipv4 << " (tcp " << s.tcp << ", udp " << s.udp
      << ", icmp " << s.icmp << ", other " << s.other_l4 << ")\n";
  if (s.quic > 0) {
    out << "quic: " << s.quic << " (long-header " << s.quic_long
        << ", short-header " << (s.quic - s.quic_long) << ")\n";
  }
  out << "tolerated: non-ipv4 " << s.non_ipv4 << ", ipv4-options "
      << s.ipv4_options << ", with-payload " << s.with_payload
      << ", undecodable " << s.undecodable << "\n"
      << "ethertypes:\n";
  for (const auto& [ethertype, count] : s.ethertypes) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%04x", ethertype);
    out << "  " << buf << ": " << count << "\n";
  }
  if (args.has("flows")) {
    print_top_flows(trace, args.uint_or("flows", 10), out);
  }
  return 0;
}

int cmd_replay(const util::CliArgs& args,
               const std::vector<std::string>& files, std::ostream& out) {
  const TraceReplayer trace = TraceReplayer::from_files(
      files[0], files.size() > 1 ? files[1] : "");
  const auto stats = trace.analyze();

  ReplayPipeline::Config config;
  config.seed = args.uint_or("seed", 1);
  config.control.core_buffer_bytes = args.uint_or("buffer-bytes", 0);
  config.control.bottleneck_bps = args.uint_or("bottleneck-bps", 0);
  if (auto program_file = args.get("program")) {
    std::ifstream in(*program_file);
    if (!in) {
      out << "error: cannot read program file '" << *program_file << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      config.programs.push_back(mpl::compile_program_text(text.str(), ""));
    } catch (const std::exception& e) {
      out << "error: " << *program_file << ": " << e.what() << "\n";
      return 2;
    }
    out << "installed program '" << config.programs.back().name << "'\n";
  }
  ReplayPipeline pipeline(config);
  const double sps = args.number_or("samples-per-second", 1.0);
  if (!std::isfinite(sps) || sps <= 0.0) {
    out << "error: --samples-per-second must be a finite value > 0\n";
    return 2;
  }
  for (std::size_t i = 0; i < cp::kMetricCount; ++i) {
    pipeline.control_plane().set_samples_per_second(
        static_cast<cp::MetricKind>(i), sps);
  }

  const SimTime until =
      stats.last_ts +
      units::seconds(args.uint_or("runout-seconds", 3));
  const auto t0 = std::chrono::steady_clock::now();
  if (args.has("max-speed")) {
    pipeline.control_plane().start();
    trace.replay_now(pipeline.simulation(), pipeline.p4_switch(),
                     /*advance_clock=*/true);
    pipeline.simulation().run_until(until);
  } else {
    pipeline.run(trace, until);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  out << "replayed " << stats.frames << " frames ("
      << (args.has("max-speed") ? "max-speed" : "paced") << ")\n"
      << "processed: " << pipeline.p4_switch().processed_pkts()
      << ", parse errors: " << pipeline.p4_switch().parse_errors() << "\n"
      << "reports emitted: " << pipeline.control_plane().reports_emitted()
      << "\n";
  if (args.has("max-speed") && elapsed > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(stats.frames) / elapsed);
    out << "throughput: " << buf << " frames/s\n";
  }
  if (args.has("print-reports")) {
    for (const auto& line : pipeline.report_lines()) out << line << "\n";
  }
  return 0;
}

}  // namespace

int trace_cli(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  const util::CliArgs args(
      argc, argv,
      {"samples-per-second", "seed", "runout-seconds", "buffer-bytes",
       "bottleneck-bps", "histogram", "bins", "hist-min-us", "hist-max-ms",
       "program", "flows"},
      {"max-speed", "print-reports"});
  if (!args.errors().empty()) {
    for (const auto& e : args.errors()) err << "p4s-trace: " << e << "\n";
    usage(err);
    return 2;
  }
  const auto& pos = args.positional();
  if (pos.empty()) {
    usage(err);
    return 2;
  }
  const std::string& command = pos[0];
  const std::vector<std::string> files(pos.begin() + 1, pos.end());
  try {
    if (command == "info") {
      if (files.empty()) {
        err << "p4s-trace info: at least one file required\n";
        return 2;
      }
      return cmd_info(files, out);
    }
    if (command == "stats" || command == "replay") {
      if (files.empty() || files.size() > 2) {
        err << "p4s-trace " << command
            << ": expects <ingress.pcap> [<egress.pcap>]\n";
        return 2;
      }
      return command == "stats" ? cmd_stats(args, files, out, err)
                                : cmd_replay(args, files, out);
    }
  } catch (const PcapError& e) {
    err << "p4s-trace: " << e.what() << "\n";
    return 2;
  }
  err << "p4s-trace: unknown command '" << command << "'\n";
  usage(err);
  return 2;
}

}  // namespace p4s::trace
