#include "trace/trace_cli.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/pcap.hpp"
#include "trace/trace_replayer.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace p4s::trace {

namespace {

void usage(std::ostream& err) {
  err << "usage: p4s-trace <command> [args]\n"
         "\n"
         "commands:\n"
         "  info   <file.pcap>...            print file header + record "
         "summary\n"
         "  stats  <ingress.pcap> [<egress.pcap>]\n"
         "                                   analyze the merged trace\n"
         "  replay <ingress.pcap> [<egress.pcap>] [--max-speed]\n"
         "         [--samples-per-second N] [--seed N] [--runout-seconds S]\n"
         "         [--buffer-bytes B] [--bottleneck-bps R] "
         "[--print-reports]\n"
         "                                   replay through the P4 "
         "pipeline\n";
}

std::string fmt_seconds(SimTime ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", units::to_seconds(ns));
  return buf;
}

int cmd_info(const std::vector<std::string>& files, std::ostream& out) {
  for (const auto& path : files) {
    PcapReader reader(path);
    const auto& info = reader.info();
    std::uint64_t records = 0;
    std::uint64_t captured = 0;
    std::uint64_t wire = 0;
    SimTime first = 0;
    SimTime last = 0;
    while (auto rec = reader.next()) {
      if (records == 0) first = rec->ts;
      last = rec->ts;
      captured += rec->bytes.size();
      wire += rec->orig_len;
      ++records;
    }
    out << path << ":\n"
        << "  format: pcap " << info.version_major << "."
        << info.version_minor << ", "
        << (info.nanosecond ? "nanosecond" : "microsecond")
        << " timestamps, "
        << (info.swapped ? "swapped" : "native") << " byte order\n"
        << "  linktype: " << info.linktype
        << (info.linktype == kLinktypeEthernet ? " (Ethernet)" : "")
        << ", snaplen: " << info.snaplen << "\n"
        << "  records: " << records << " (" << captured
        << " captured bytes, " << wire << " on the wire)\n";
    if (records > 0) {
      out << "  time span: " << fmt_seconds(first) << "s .. "
          << fmt_seconds(last) << "s (duration "
          << fmt_seconds(last - first) << "s)\n";
    }
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& files, std::ostream& out) {
  const TraceReplayer trace = TraceReplayer::from_files(
      files[0], files.size() > 1 ? files[1] : "");
  const auto s = trace.analyze();
  out << "frames: " << s.frames << " (ingress " << s.ingress_frames
      << ", egress " << s.egress_frames << ")\n"
      << "bytes: " << s.captured_bytes << " captured, " << s.wire_bytes
      << " on the wire\n";
  if (s.frames > 0) {
    out << "time span: " << fmt_seconds(s.first_ts) << "s .. "
        << fmt_seconds(s.last_ts) << "s\n";
  }
  out << "ipv4: " << s.ipv4 << " (tcp " << s.tcp << ", udp " << s.udp
      << ", icmp " << s.icmp << ", other " << s.other_l4 << ")\n"
      << "tolerated: non-ipv4 " << s.non_ipv4 << ", ipv4-options "
      << s.ipv4_options << ", with-payload " << s.with_payload
      << ", undecodable " << s.undecodable << "\n"
      << "ethertypes:\n";
  for (const auto& [ethertype, count] : s.ethertypes) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%04x", ethertype);
    out << "  " << buf << ": " << count << "\n";
  }
  return 0;
}

int cmd_replay(const util::CliArgs& args,
               const std::vector<std::string>& files, std::ostream& out) {
  const TraceReplayer trace = TraceReplayer::from_files(
      files[0], files.size() > 1 ? files[1] : "");
  const auto stats = trace.analyze();

  ReplayPipeline::Config config;
  config.seed = args.uint_or("seed", 1);
  config.control.core_buffer_bytes = args.uint_or("buffer-bytes", 0);
  config.control.bottleneck_bps = args.uint_or("bottleneck-bps", 0);
  ReplayPipeline pipeline(config);
  const double sps = args.number_or("samples-per-second", 1.0);
  if (!std::isfinite(sps) || sps <= 0.0) {
    out << "error: --samples-per-second must be a finite value > 0\n";
    return 2;
  }
  for (std::size_t i = 0; i < cp::kMetricCount; ++i) {
    pipeline.control_plane().set_samples_per_second(
        static_cast<cp::MetricKind>(i), sps);
  }

  const SimTime until =
      stats.last_ts +
      units::seconds(args.uint_or("runout-seconds", 3));
  const auto t0 = std::chrono::steady_clock::now();
  if (args.has("max-speed")) {
    pipeline.control_plane().start();
    trace.replay_now(pipeline.simulation(), pipeline.p4_switch(),
                     /*advance_clock=*/true);
    pipeline.simulation().run_until(until);
  } else {
    pipeline.run(trace, until);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  out << "replayed " << stats.frames << " frames ("
      << (args.has("max-speed") ? "max-speed" : "paced") << ")\n"
      << "processed: " << pipeline.p4_switch().processed_pkts()
      << ", parse errors: " << pipeline.p4_switch().parse_errors() << "\n"
      << "reports emitted: " << pipeline.control_plane().reports_emitted()
      << "\n";
  if (args.has("max-speed") && elapsed > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(stats.frames) / elapsed);
    out << "throughput: " << buf << " frames/s\n";
  }
  if (args.has("print-reports")) {
    for (const auto& line : pipeline.report_lines()) out << line << "\n";
  }
  return 0;
}

}  // namespace

int trace_cli(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  const util::CliArgs args(
      argc, argv,
      {"samples-per-second", "seed", "runout-seconds", "buffer-bytes",
       "bottleneck-bps"},
      {"max-speed", "print-reports"});
  if (!args.errors().empty()) {
    for (const auto& e : args.errors()) err << "p4s-trace: " << e << "\n";
    usage(err);
    return 2;
  }
  const auto& pos = args.positional();
  if (pos.empty()) {
    usage(err);
    return 2;
  }
  const std::string& command = pos[0];
  const std::vector<std::string> files(pos.begin() + 1, pos.end());
  try {
    if (command == "info") {
      if (files.empty()) {
        err << "p4s-trace info: at least one file required\n";
        return 2;
      }
      return cmd_info(files, out);
    }
    if (command == "stats" || command == "replay") {
      if (files.empty() || files.size() > 2) {
        err << "p4s-trace " << command
            << ": expects <ingress.pcap> [<egress.pcap>]\n";
        return 2;
      }
      return command == "stats" ? cmd_stats(files, out)
                                : cmd_replay(args, files, out);
    }
  } catch (const PcapError& e) {
    err << "p4s-trace: " << e.what() << "\n";
    return 2;
  }
  err << "p4s-trace: unknown command '" << command << "'\n";
  usage(err);
  return 2;
}

}  // namespace p4s::trace
