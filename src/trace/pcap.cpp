#include "trace/pcap.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace p4s::trace {

namespace {

// The writer always emits little-endian files (stable golden bytes on
// any host); the reader byte-swaps as the magic dictates.

void put_le16(std::ostream& out, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xFF),
                     static_cast<char>((v >> 8) & 0xFF)};
  out.write(b, 2);
}

void put_le32(std::ostream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xFF),
                     static_cast<char>((v >> 8) & 0xFF),
                     static_cast<char>((v >> 16) & 0xFF),
                     static_cast<char>((v >> 24) & 0xFF)};
  out.write(b, 4);
}

std::uint16_t load_u16(const std::uint8_t* p, bool swapped) {
  const std::uint16_t le =
      static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  if (!swapped) return le;
  return static_cast<std::uint16_t>((le >> 8) | (le << 8));
}

std::uint32_t load_u32(const std::uint8_t* p, bool swapped) {
  const std::uint32_t le = static_cast<std::uint32_t>(p[0]) |
                           (static_cast<std::uint32_t>(p[1]) << 8) |
                           (static_cast<std::uint32_t>(p[2]) << 16) |
                           (static_cast<std::uint32_t>(p[3]) << 24);
  if (!swapped) return le;
  return ((le >> 24) & 0xFF) | ((le >> 8) & 0xFF00) | ((le << 8) & 0xFF0000) |
         (le << 24);
}

}  // namespace

// ---------------------------------------------------------------- writer

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen)
    : out_(&out), snaplen_(snaplen) {
  write_global_header();
}

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::binary |
                                                       std::ios::trunc)),
      out_(owned_.get()),
      snaplen_(snaplen) {
  if (!*owned_) {
    throw PcapError("pcap: cannot open '" + path + "' for writing");
  }
  write_global_header();
}

void PcapWriter::write_global_header() {
  put_le32(*out_, kPcapMagicNano);
  put_le16(*out_, kPcapVersionMajor);
  put_le16(*out_, kPcapVersionMinor);
  put_le32(*out_, 0);  // thiszone (GMT offset, always 0)
  put_le32(*out_, 0);  // sigfigs (always 0 in practice)
  put_le32(*out_, snaplen_);
  put_le32(*out_, kLinktypeEthernet);
  if (!*out_) throw PcapError("pcap: write failed on global header");
}

void PcapWriter::write(SimTime ts, std::span<const std::uint8_t> frame,
                       std::uint32_t orig_len) {
  if (orig_len == 0) orig_len = static_cast<std::uint32_t>(frame.size());
  const std::uint32_t incl_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(frame.size(), snaplen_));
  put_le32(*out_, static_cast<std::uint32_t>(ts / 1'000'000'000ULL));
  put_le32(*out_, static_cast<std::uint32_t>(ts % 1'000'000'000ULL));
  put_le32(*out_, incl_len);
  put_le32(*out_, orig_len);
  out_->write(reinterpret_cast<const char*>(frame.data()), incl_len);
  if (!*out_) throw PcapError("pcap: write failed on record");
  ++records_;
}

void PcapWriter::flush() { out_->flush(); }

// ---------------------------------------------------------------- reader

PcapReader::PcapReader(std::istream& in) : in_(&in) {
  parse_global_header();
}

PcapReader::PcapReader(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      in_(owned_.get()) {
  if (!*owned_) throw PcapError("pcap: cannot open '" + path + "'");
  parse_global_header();
}

void PcapReader::parse_global_header() {
  std::array<std::uint8_t, kPcapGlobalHeaderBytes> h{};
  in_->read(reinterpret_cast<char*>(h.data()), h.size());
  if (in_->gcount() != static_cast<std::streamsize>(h.size())) {
    throw PcapError("pcap: file shorter than the 24-byte global header");
  }
  // Try the magic in both resolutions and byte orders.
  const std::uint32_t magic_le = load_u32(h.data(), /*swapped=*/false);
  const std::uint32_t magic_be = load_u32(h.data(), /*swapped=*/true);
  if (magic_le == kPcapMagicNano) {
    info_.nanosecond = true;
    info_.swapped = false;
  } else if (magic_le == kPcapMagicMicro) {
    info_.nanosecond = false;
    info_.swapped = false;
  } else if (magic_be == kPcapMagicNano) {
    info_.nanosecond = true;
    info_.swapped = true;
  } else if (magic_be == kPcapMagicMicro) {
    info_.nanosecond = false;
    info_.swapped = true;
  } else {
    throw PcapError("pcap: unrecognized magic (not a pcap capture file)");
  }
  const bool sw = info_.swapped;
  info_.version_major = load_u16(h.data() + 4, sw);
  info_.version_minor = load_u16(h.data() + 6, sw);
  info_.snaplen = load_u32(h.data() + 16, sw);
  info_.linktype = load_u32(h.data() + 20, sw);
}

std::optional<PcapRecord> PcapReader::next() {
  std::array<std::uint8_t, kPcapRecordHeaderBytes> h{};
  in_->read(reinterpret_cast<char*>(h.data()), h.size());
  const auto got = in_->gcount();
  if (got == 0) return std::nullopt;  // clean EOF
  if (got != static_cast<std::streamsize>(h.size())) {
    throw PcapError("pcap: truncated record header after " +
                    std::to_string(records_read_) + " record(s)");
  }
  const bool sw = info_.swapped;
  PcapRecord rec;
  const std::uint64_t ts_sec = load_u32(h.data(), sw);
  const std::uint64_t ts_sub = load_u32(h.data() + 4, sw);
  rec.ts = info_.nanosecond ? ts_sec * 1'000'000'000ULL + ts_sub
                            : ts_sec * 1'000'000'000ULL + ts_sub * 1'000ULL;
  const std::uint32_t incl_len = load_u32(h.data() + 8, sw);
  rec.orig_len = load_u32(h.data() + 12, sw);
  // A snaplen-exceeding incl_len means a corrupt or hostile length field;
  // bail before trying to allocate it. (Tolerate snaplen 0 files.)
  if (info_.snaplen != 0 && incl_len > info_.snaplen) {
    throw PcapError("pcap: record " + std::to_string(records_read_) +
                    " claims " + std::to_string(incl_len) +
                    " captured bytes, beyond the file snaplen of " +
                    std::to_string(info_.snaplen));
  }
  rec.bytes.resize(incl_len);
  in_->read(reinterpret_cast<char*>(rec.bytes.data()), incl_len);
  if (in_->gcount() != static_cast<std::streamsize>(incl_len)) {
    throw PcapError("pcap: record " + std::to_string(records_read_) +
                    " truncated mid-frame (wanted " +
                    std::to_string(incl_len) + " bytes)");
  }
  ++records_read_;
  return rec;
}

std::vector<PcapRecord> PcapReader::read_all(const std::string& path,
                                             FileInfo* info_out) {
  PcapReader reader(path);
  std::vector<PcapRecord> records;
  while (auto rec = reader.next()) records.push_back(std::move(*rec));
  if (info_out != nullptr) *info_out = reader.info();
  return records;
}

}  // namespace p4s::trace
