// Hash engines as provided by P4 targets: CRC-based, seedable, usable for
// flow-ID computation and count-min sketch row indexing (§4: "group
// packets into flows using the hash of the 5-tuple").
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "net/packet.hpp"

namespace p4s::p4 {

/// Reflected CRC32 (polynomial 0xEDB88320), table-driven, with a seed so
/// multiple independent hash units can be instantiated (CMS rows).
class Crc32 {
 public:
  explicit Crc32(std::uint32_t seed = 0) : seed_(seed) {}

  std::uint32_t operator()(std::span<const std::uint8_t> data) const;

  std::uint32_t seed() const { return seed_; }

 private:
  std::uint32_t seed_;
};

/// CRC16/ARC (polynomial 0x8005 reflected = 0xA001).
class Crc16 {
 public:
  explicit Crc16(std::uint16_t seed = 0) : seed_(seed) {}

  std::uint16_t operator()(std::span<const std::uint8_t> data) const;

 private:
  std::uint16_t seed_;
};

/// Canonical byte encoding of a 5-tuple for hashing (13 bytes:
/// src ip, dst ip, src port, dst port, protocol — big-endian), matching
/// how a P4 program would feed header fields into a hash extern.
std::array<std::uint8_t, 13> five_tuple_key(const net::FiveTuple& t);

/// Flow ID as the paper uses it: CRC32 of the 5-tuple. The data plane
/// indexes its 2048-slot register arrays with (id % slots).
std::uint32_t flow_hash(const net::FiveTuple& t, std::uint32_t seed = 0);

/// Precomputed per-tuple hash inputs: the canonical key bytes plus the
/// forward and reverse flow IDs. Computed once per packet on the TAP hot
/// path and shared by every engine that would otherwise rebuild the key
/// and re-run the CRC (flow tracking, ACK matching, packet signatures).
struct FlowKey {
  net::FiveTuple tuple;
  std::array<std::uint8_t, 13> key{};
  std::uint32_t flow_id = 0;
  std::uint32_t rev_flow_id = 0;

  static FlowKey from(const net::FiveTuple& t);
};

}  // namespace p4s::p4
