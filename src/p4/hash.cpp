#include "p4/hash.hpp"

namespace p4s::p4 {

namespace {

struct Crc32Table {
  std::array<std::uint32_t, 256> entries{};
  constexpr Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kCrc32Table{};

struct Crc16Table {
  std::array<std::uint16_t, 256> entries{};
  constexpr Crc16Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint16_t c = static_cast<std::uint16_t>(i);
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? static_cast<std::uint16_t>(0xA001u ^ (c >> 1))
                    : static_cast<std::uint16_t>(c >> 1);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc16Table kCrc16Table{};

}  // namespace

std::uint32_t Crc32::operator()(std::span<const std::uint8_t> data) const {
  std::uint32_t c = ~seed_;
  for (std::uint8_t b : data) {
    c = kCrc32Table.entries[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

std::uint16_t Crc16::operator()(std::span<const std::uint8_t> data) const {
  // CRC-16/ARC: init = seed (0 by default), reflected, no final xor.
  std::uint16_t c = seed_;
  for (std::uint8_t b : data) {
    c = static_cast<std::uint16_t>(kCrc16Table.entries[(c ^ b) & 0xFF] ^
                                   (c >> 8));
  }
  return c;
}

std::array<std::uint8_t, 13> five_tuple_key(const net::FiveTuple& t) {
  std::array<std::uint8_t, 13> key{};
  auto put32 = [&key](std::size_t at, std::uint32_t v) {
    key[at] = static_cast<std::uint8_t>(v >> 24);
    key[at + 1] = static_cast<std::uint8_t>(v >> 16);
    key[at + 2] = static_cast<std::uint8_t>(v >> 8);
    key[at + 3] = static_cast<std::uint8_t>(v);
  };
  auto put16 = [&key](std::size_t at, std::uint16_t v) {
    key[at] = static_cast<std::uint8_t>(v >> 8);
    key[at + 1] = static_cast<std::uint8_t>(v);
  };
  put32(0, t.src_ip);
  put32(4, t.dst_ip);
  put16(8, t.src_port);
  put16(10, t.dst_port);
  key[12] = t.protocol;
  return key;
}

std::uint32_t flow_hash(const net::FiveTuple& t, std::uint32_t seed) {
  const auto key = five_tuple_key(t);
  return Crc32{seed}(key);
}

FlowKey FlowKey::from(const net::FiveTuple& t) {
  FlowKey fk;
  fk.tuple = t;
  fk.key = five_tuple_key(t);
  fk.flow_id = Crc32{0}(fk.key);
  fk.rev_flow_id = flow_hash(t.reversed());
  return fk;
}

}  // namespace p4s::p4
