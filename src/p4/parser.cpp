#include "p4/parser.hpp"

namespace p4s::p4 {

namespace {

struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  bool have(std::size_t n) const { return pos + n <= data.size(); }
  std::uint8_t u8() { return data[pos++]; }
  std::uint16_t u16() {
    const std::uint16_t v =
        static_cast<std::uint16_t>(data[pos] << 8) | data[pos + 1];
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[pos]) << 24) |
                            (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
                            (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
                            data[pos + 3];
    pos += 4;
    return v;
  }
  void skip(std::size_t n) { pos += n; }
};

// state parse_ethernet
bool parse_ethernet(Cursor& c, ParsedHeaders& hdr) {
  if (!c.have(14)) return false;
  for (auto& b : hdr.ethernet.dst_mac) b = c.u8();
  for (auto& b : hdr.ethernet.src_mac) b = c.u8();
  hdr.ethernet.ethertype = c.u16();
  hdr.ethernet_valid = true;
  return true;
}

// state parse_ipv4
bool parse_ipv4(Cursor& c, ParsedHeaders& hdr) {
  if (!c.have(20)) return false;
  const std::uint8_t ver_ihl = c.u8();
  hdr.ipv4.version = ver_ihl >> 4;
  hdr.ipv4.ihl = ver_ihl & 0x0F;
  if (hdr.ipv4.version != 4 || hdr.ipv4.ihl < 5) return false;
  hdr.ipv4.dscp = c.u8();
  hdr.ipv4.total_len = c.u16();
  hdr.ipv4.id = c.u16();
  c.skip(2);  // flags/frag
  hdr.ipv4.ttl = c.u8();
  hdr.ipv4.protocol = c.u8();
  c.skip(2);  // checksum (verified by the MAU in hardware, not the parser)
  hdr.ipv4.src = c.u32();
  hdr.ipv4.dst = c.u32();
  // Options, if any, are skipped (not extracted).
  const std::size_t options = (hdr.ipv4.ihl - 5u) * 4u;
  if (!c.have(options)) return false;
  c.skip(options);
  hdr.ipv4_valid = true;
  return true;
}

// state parse_tcp
bool parse_tcp(Cursor& c, ParsedHeaders& hdr) {
  if (!c.have(20)) return false;
  hdr.tcp.src_port = c.u16();
  hdr.tcp.dst_port = c.u16();
  hdr.tcp.seq = c.u32();
  hdr.tcp.ack = c.u32();
  hdr.tcp.data_offset = c.u8() >> 4;
  hdr.tcp.flags = c.u8();
  hdr.tcp.window = static_cast<std::uint32_t>(c.u16()) << net::kWindowShift;
  c.skip(4);  // checksum + urgent
  hdr.tcp_valid = true;
  return true;
}

// state parse_quic — entered from parse_udp when the first payload byte
// carries the QUIC fixed bit. Extraction mirrors the wire codec's fixed
// shape (8-byte CIDs, 4-byte packet numbers); any mismatch falls back
// to plain UDP (the payload is opaque, not a parse error — a switch
// cannot reject traffic for not being QUIC).
void parse_quic(Cursor& c, ParsedHeaders& hdr) {
  std::uint64_t u64 = 0;
  if (!c.have(13)) return;
  const std::size_t start = c.pos;
  const std::uint8_t byte0 = c.u8();
  if ((byte0 & 0x40) == 0) {
    c.pos = start;
    return;
  }
  net::QuicHeader q;
  if ((byte0 & 0x80) != 0) {
    if (!c.have(26)) {
      c.pos = start;
      return;
    }
    q.long_form = true;
    q.type = (byte0 >> 4) & 0x03;
    q.version = c.u32();
    if (c.u8() != 8) {
      c.pos = start;
      return;
    }
    u64 = static_cast<std::uint64_t>(c.u32()) << 32;
    q.dcid = u64 | c.u32();
    if (c.u8() != 8) {
      c.pos = start;
      return;
    }
    u64 = static_cast<std::uint64_t>(c.u32()) << 32;
    q.scid = u64 | c.u32();
  } else {
    if ((byte0 & 0x03) != 0x03) {
      c.pos = start;
      return;
    }
    q.spin = (byte0 & 0x20) != 0;
    u64 = static_cast<std::uint64_t>(c.u32()) << 32;
    q.dcid = u64 | c.u32();
  }
  q.packet_number = c.u32();
  hdr.quic = q;
  hdr.quic_valid = true;
}

// state parse_udp
bool parse_udp(Cursor& c, ParsedHeaders& hdr) {
  if (!c.have(8)) return false;
  hdr.udp.src_port = c.u16();
  hdr.udp.dst_port = c.u16();
  hdr.udp.length = c.u16();
  c.skip(2);
  hdr.udp_valid = true;
  // select(first payload byte): QUIC or opaque payload.
  parse_quic(c, hdr);
  return true;
}

// state parse_icmp
bool parse_icmp(Cursor& c, ParsedHeaders& hdr) {
  if (!c.have(8)) return false;
  hdr.icmp.type = c.u8();
  hdr.icmp.code = c.u8();
  c.skip(2);
  hdr.icmp.ident = c.u16();
  hdr.icmp.seq = c.u16();
  hdr.icmp_valid = true;
  return true;
}

}  // namespace

Parser::Result Parser::parse(PacketContext& ctx) {
  Cursor c{ctx.data, 0};
  ctx.hdr = ParsedHeaders{};

  // start -> parse_ethernet
  if (!parse_ethernet(c, ctx.hdr)) {
    ++stats_.rejected;
    return Result::kReject;
  }
  // select(hdr.ethernet.ethertype)
  if (ctx.hdr.ethernet.ethertype != net::kEtherTypeIpv4) {
    // Non-IPv4 frames accept with only Ethernet extracted (the telemetry
    // program ignores them).
    ++stats_.accepted;
    return Result::kAccept;
  }
  if (!parse_ipv4(c, ctx.hdr)) {
    ++stats_.rejected;
    return Result::kReject;
  }
  // select(hdr.ipv4.protocol)
  bool ok = false;
  switch (static_cast<net::Protocol>(ctx.hdr.ipv4.protocol)) {
    case net::Protocol::kTcp: ok = parse_tcp(c, ctx.hdr); break;
    case net::Protocol::kUdp: ok = parse_udp(c, ctx.hdr); break;
    case net::Protocol::kIcmp: ok = parse_icmp(c, ctx.hdr); break;
    default: ok = true; break;  // L4-unknown still accepts (IPv4-only view)
  }
  if (!ok) {
    ++stats_.rejected;
    return Result::kReject;
  }
  ++stats_.accepted;
  return Result::kAccept;
}

}  // namespace p4s::p4
