// Stateful register arrays, the P4 externs the paper's data-plane program
// is built on (§3.3.2: "statistics are continuously updated and maintained
// by dedicated stateful registers where the data plane can track 2048
// active flows simultaneously").
//
// The emulation mirrors the Tofino programming model:
//  * the data plane performs indexed read/modify/write operations,
//  * the control plane reads cells (or the whole array) and may reset
//    them through the vendor "driver" API — exactly the interface the
//    paper's control plane uses to extract measurements at run time.
// Access counters make data-plane/control-plane traffic observable in
// tests and micro-benchmarks.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace p4s::p4 {

template <typename T>
class RegisterArray {
 public:
  explicit RegisterArray(std::size_t size, T initial = T{})
      : cells_(size, initial), initial_(initial) {}

  std::size_t size() const { return cells_.size(); }

  // ---- Data-plane interface -------------------------------------------

  T read(std::size_t index) {
    assert(index < cells_.size());
    ++dp_reads_;
    return cells_[index];
  }

  void write(std::size_t index, T value) {
    assert(index < cells_.size());
    ++dp_writes_;
    cells_[index] = value;
  }

  /// Atomic read-modify-write, the Tofino RegisterAction idiom. `fn`
  /// receives a mutable reference to the cell and returns the value
  /// forwarded to the pipeline.
  template <typename Fn>
  auto execute(std::size_t index, Fn&& fn) {
    assert(index < cells_.size());
    ++dp_rmws_;
    return fn(cells_[index]);
  }

  // ---- Control-plane ("driver") interface -----------------------------

  T cp_read(std::size_t index) const {
    assert(index < cells_.size());
    ++cp_reads_;
    return cells_[index];
  }

  /// Bulk read of the whole array (the driver's sync-and-read).
  std::vector<T> cp_read_all() const {
    cp_reads_ += cells_.size();
    return cells_;
  }

  void cp_write(std::size_t index, T value) {
    assert(index < cells_.size());
    ++cp_writes_;
    cells_[index] = value;
  }

  /// Reset every cell to the initial value.
  void cp_clear() {
    cp_writes_ += cells_.size();
    std::fill(cells_.begin(), cells_.end(), initial_);
  }

  std::uint64_t data_plane_reads() const { return dp_reads_; }
  std::uint64_t data_plane_writes() const { return dp_writes_; }
  std::uint64_t data_plane_rmws() const { return dp_rmws_; }
  std::uint64_t control_plane_reads() const { return cp_reads_; }
  std::uint64_t control_plane_writes() const { return cp_writes_; }

 private:
  std::vector<T> cells_;
  T initial_;
  std::uint64_t dp_reads_ = 0;
  std::uint64_t dp_writes_ = 0;
  std::uint64_t dp_rmws_ = 0;
  mutable std::uint64_t cp_reads_ = 0;
  std::uint64_t cp_writes_ = 0;
};

}  // namespace p4s::p4
