// The P4 programmable switch target. It receives the two TAP mirror
// streams on dedicated ports (like the Wedge100BF-32X ports the paper
// cables the TAPs into), serializes each packet's headers to bytes, runs
// the programmable parser, and hands the packet context to the loaded
// program. Port and ingress-timestamp intrinsic metadata are attached by
// the target, exactly as on Tofino.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "net/tap.hpp"
#include "p4/parser.hpp"
#include "p4/pipeline.hpp"
#include "sim/simulation.hpp"

namespace p4s::p4 {

class P4Switch : public net::MirrorSink {
 public:
  static constexpr std::uint16_t kIngressTapPort = 0;
  static constexpr std::uint16_t kEgressTapPort = 1;

  P4Switch(sim::Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  /// Load (or swap) the pipeline program. Non-owning.
  void load_program(P4Program& program) { program_ = &program; }

  void on_mirrored(const net::Packet& pkt, net::MirrorPoint point) override;
  void on_mirrored_wire(const net::Packet& pkt,
                        std::span<const std::uint8_t> bytes,
                        net::MirrorPoint point) override;
  void on_mirrored_bytes(std::span<const std::uint8_t> bytes,
                         net::MirrorPoint point,
                         std::uint32_t wire_len) override;

  const Parser& parser() const { return parser_; }
  std::uint64_t processed_pkts() const { return processed_; }
  std::uint64_t parse_errors() const { return parse_errors_; }
  const std::string& name() const { return name_; }

 private:
  void process_wire(std::span<const std::uint8_t> bytes,
                    net::MirrorPoint point);

  sim::Simulation& sim_;
  std::string name_;
  Parser parser_;
  P4Program* program_ = nullptr;
  std::uint64_t processed_ = 0;
  std::uint64_t parse_errors_ = 0;
};

}  // namespace p4s::p4
