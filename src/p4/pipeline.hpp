// Pipeline program interface and the digest channel through which the
// data plane notifies the control plane asynchronously (new long flow
// detected, microburst started, ...). Digests are typed and bounded, like
// a hardware digest FIFO: when the control plane falls behind, new
// digests are dropped and counted.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "p4/parser.hpp"

namespace p4s::p4 {

/// A P4 program's ingress control block. The target (P4Switch) invokes
/// this once per accepted packet.
class P4Program {
 public:
  virtual ~P4Program() = default;
  virtual void ingress(PacketContext& ctx) = 0;
};

template <typename T>
class DigestQueue {
 public:
  explicit DigestQueue(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Data plane: emit a digest. Drops (and counts) when the FIFO is full.
  void emit(T digest) {
    if (queue_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    queue_.push_back(std::move(digest));
  }

  /// Control plane: drain all pending digests.
  std::vector<T> drain() {
    std::vector<T> out(std::make_move_iterator(queue_.begin()),
                       std::make_move_iterator(queue_.end()));
    queue_.clear();
    return out;
  }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<T> queue_;
  std::uint64_t dropped_ = 0;
};

}  // namespace p4s::p4
