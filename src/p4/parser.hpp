// Programmable parser: a state machine that extracts headers from packet
// bytes, mirroring a P4 parser block (start -> ethernet -> ipv4 ->
// {tcp,udp,icmp} -> accept, with udp -> quic when the payload prefix
// carries a QUIC fixed bit). The pipeline only ever sees fields the
// parser extracted — validity bits and all — which is what makes
// downstream code honest about what a data plane can actually observe.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "net/packet.hpp"
#include "net/wire.hpp"
#include "util/units.hpp"

namespace p4s::p4 {

/// Tofino-style intrinsic metadata attached by the target, not the
/// program: arrival port and nanosecond ingress timestamp.
struct IntrinsicMetadata {
  std::uint16_t ingress_port = 0;
  SimTime ingress_ts = 0;
};

/// Extracted Ethernet II header.
struct EthernetHeader {
  std::array<std::uint8_t, 6> dst_mac{};
  std::array<std::uint8_t, 6> src_mac{};
  std::uint16_t ethertype = 0;
};

/// Extracted headers with validity bits.
struct ParsedHeaders {
  bool ethernet_valid = false;
  bool ipv4_valid = false;
  bool tcp_valid = false;
  bool udp_valid = false;
  bool icmp_valid = false;
  bool quic_valid = false;
  EthernetHeader ethernet;
  net::Ipv4Header ipv4;
  net::TcpHeader tcp;
  net::UdpHeader udp;
  net::QuicHeader quic;
  net::IcmpHeader icmp;
};

/// Per-packet context threaded through parser and pipeline.
struct PacketContext {
  std::span<const std::uint8_t> data;
  IntrinsicMetadata meta;
  ParsedHeaders hdr;
};

class Parser {
 public:
  enum class Result { kAccept, kReject };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };

  /// Run the state machine over ctx.data, filling ctx.hdr.
  Result parse(PacketContext& ctx);

  const Stats& stats() const { return stats_; }

 private:
  Stats stats_;
};

}  // namespace p4s::p4
