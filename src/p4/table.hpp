// Match-action table emulation. The control plane populates entries at
// run time; the data plane performs exact-match lookups and applies the
// hit action's data (or the default action's). Typed on key and action
// data, which is how generated P4 APIs look after codegen.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

namespace p4s::p4 {

template <typename Key, typename ActionData,
          typename Hash = std::hash<Key>>
class ExactMatchTable {
 public:
  explicit ExactMatchTable(std::size_t max_entries = 65536)
      : max_entries_(max_entries) {}

  /// Control plane: insert or update an entry. Returns false when the
  /// table is full (a real target rejects the entry).
  bool insert(const Key& key, ActionData data) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second = std::move(data);
      return true;
    }
    if (entries_.size() >= max_entries_) return false;
    entries_.emplace(key, std::move(data));
    return true;
  }

  bool erase(const Key& key) { return entries_.erase(key) > 0; }
  void clear() { entries_.clear(); }

  void set_default(ActionData data) { default_ = std::move(data); }

  /// Data plane: exact-match lookup. Returns the hit entry, or the
  /// default action data (which may be nullopt -> "miss, no default").
  std::optional<ActionData> lookup(const Key& key) const {
    ++lookups_;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    return default_;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return max_entries_; }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }

 private:
  std::size_t max_entries_;
  std::unordered_map<Key, ActionData, Hash> entries_;
  std::optional<ActionData> default_;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t hits_ = 0;
};

}  // namespace p4s::p4
