// Count-min sketch (Cormode & Muthukrishnan 2005), the structure the
// paper's data plane uses to detect long ("heavy") flows before allocating
// one of the 2048 per-flow register slots (§4). Each row uses an
// independently seeded CRC32, matching how a P4 program instantiates
// multiple hash externs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "p4/hash.hpp"

namespace p4s::p4 {

class CountMinSketch {
 public:
  /// `depth` rows x `width` counters. Width should be a power of two so
  /// indexing is a mask (as it would compile on a hardware target).
  CountMinSketch(std::size_t depth, std::size_t width)
      : width_(width), counters_(depth, std::vector<std::uint64_t>(width, 0)) {
    hashes_.reserve(depth);
    for (std::size_t d = 0; d < depth; ++d) {
      hashes_.emplace_back(static_cast<std::uint32_t>(0x9E3779B9u * (d + 1)));
    }
  }

  /// Add `amount` to the key's counters and return the new min estimate
  /// (conservative update is NOT used: plain CMS, as in the paper's cited
  /// construction).
  std::uint64_t update(std::span<const std::uint8_t> key,
                       std::uint64_t amount = 1) {
    std::uint64_t est = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t d = 0; d < counters_.size(); ++d) {
      const std::size_t idx = hashes_[d](key) % width_;
      counters_[d][idx] += amount;
      est = std::min(est, counters_[d][idx]);
    }
    return est;
  }

  /// Point query without updating.
  std::uint64_t estimate(std::span<const std::uint8_t> key) const {
    std::uint64_t est = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t d = 0; d < counters_.size(); ++d) {
      const std::size_t idx = hashes_[d](key) % width_;
      est = std::min(est, counters_[d][idx]);
    }
    return est;
  }

  void clear() {
    for (auto& row : counters_) std::fill(row.begin(), row.end(), 0);
  }

  std::size_t depth() const { return counters_.size(); }
  std::size_t width() const { return width_; }

 private:
  std::size_t width_;
  std::vector<std::vector<std::uint64_t>> counters_;
  std::vector<Crc32> hashes_;
};

}  // namespace p4s::p4
