#include "p4/p4_switch.hpp"

#include <array>

#include "net/wire.hpp"

namespace p4s::p4 {

void P4Switch::on_mirrored(const net::Packet& pkt, net::MirrorPoint point) {
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  const std::size_t len = net::serialize_headers(pkt, buf);

  PacketContext ctx;
  ctx.data = std::span<const std::uint8_t>(buf.data(), len);
  ctx.meta.ingress_port = point == net::MirrorPoint::kIngress
                              ? kIngressTapPort
                              : kEgressTapPort;
  ctx.meta.ingress_ts = sim_.now();

  if (parser_.parse(ctx) != Parser::Result::kAccept) {
    ++parse_errors_;
    return;
  }
  ++processed_;
  if (program_ != nullptr) program_->ingress(ctx);
}

}  // namespace p4s::p4
