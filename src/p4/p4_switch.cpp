#include "p4/p4_switch.hpp"

#include <array>

#include "net/wire.hpp"

namespace p4s::p4 {

void P4Switch::on_mirrored(const net::Packet& pkt, net::MirrorPoint point) {
  // Packet-level entry (tests, benches): serialize here, then take the
  // common byte path.
  std::array<std::uint8_t, net::kMaxHeaderBytes> buf{};
  const std::size_t len = net::serialize_headers(pkt, buf);
  process_wire(std::span<const std::uint8_t>(buf.data(), len), point);
}

void P4Switch::on_mirrored_wire(const net::Packet& /*pkt*/,
                                std::span<const std::uint8_t> bytes,
                                net::MirrorPoint point) {
  // Wire-level entry (the TAP): the bytes were serialized once at the
  // mirror point and shared across copies — no re-serialization here.
  process_wire(bytes, point);
}

void P4Switch::on_mirrored_bytes(std::span<const std::uint8_t> bytes,
                                 net::MirrorPoint point,
                                 std::uint32_t /*wire_len*/) {
  // Boundary entry (parallel fabric): identical to the wire path — the
  // switch only ever looks at the parsed bytes, and `sim_` is the shard
  // clock, advanced to the frame's delivery time before this call, so
  // ingress_ts matches the serial run exactly.
  process_wire(bytes, point);
}

void P4Switch::process_wire(std::span<const std::uint8_t> bytes,
                            net::MirrorPoint point) {
  PacketContext ctx;
  ctx.data = bytes;
  ctx.meta.ingress_port = point == net::MirrorPoint::kIngress
                              ? kIngressTapPort
                              : kEgressTapPort;
  ctx.meta.ingress_ts = sim_.now();

  if (parser_.parse(ctx) != Parser::Result::kAccept) {
    ++parse_errors_;
    return;
  }
  ++processed_;
  if (program_ != nullptr) program_->ingress(ctx);
}

}  // namespace p4s::p4
